"""Command-line interface: run AMPC algorithms on edge-list files.

Usage::

    python -m repro connectivity graph.txt [--epsilon 0.5] [--seed 0]
    python -m repro mis graph.txt
    python -m repro matching graph.txt
    python -m repro coloring graph.txt
    python -m repro msf weighted.txt          # needs a weight column
    python -m repro two-cycle cycles.txt
    python -m repro bc graph.txt              # bridges / articulation / 2ecc
    python -m repro chaos connectivity graph.txt --crash 0.2 --outage 0.1
    python -m repro chaos connectivity graph.txt --backend process \
        --kill-worker 0.1 --hang-worker 0.05 --delay-reply 0.1
    python -m repro verify --smoke [--chaos] [--vectorized] [--json report.json]
    python -m repro verify --smoke --backend process --workers 4
    python -m repro verify --backend process --process-faults
    python -m repro trace connectivity [graph.txt] [--detail machine]
    python -m repro bench --quick
    python -m repro perf collect --suite smoke
    python -m repro perf check [--suite smoke] [--json -]
    python -m repro perf baseline --suite smoke [--profile ID]
    python -m repro perf report --suite smoke
    python -m repro perf regen [--quick] [--only observe]
    python -m repro serve graph.txt --query mis_member:17
    python -m repro serve --size 500 --workload bursty-hotspot
    python -m repro loadgen --size 400 --backends serial,process \
        --json benchmarks/BENCH_serve.json
    python -m repro generate er 1000 3000 out.txt [--seed 0]

Algorithm runs, traces, and verify sweeps accept ``--backend
{serial,process}`` and ``--workers N`` to execute rounds on the
multi-core process backend (results and cost ledgers are bit-identical
to serial; see docs/api.md "Execution backends").

Every run prints the result summary followed by the per-round cost
ledger (``--no-ledger`` to suppress).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMPC graph algorithms (SPAA 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=["serial", "process"],
                       default="serial",
                       help="execution backend: 'serial' (default) or "
                            "'process' (multi-core worker pool; results "
                            "and ledgers are bit-identical to serial)")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="process-backend worker count "
                            "(default: autodetect from CPU count)")

    def add_run(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("graph", help="edge-list file (u v [w] per line)")
        p.add_argument("--epsilon", type=float, default=0.5,
                       help="space exponent ε (default 0.5)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--no-ledger", action="store_true",
                       help="suppress the per-round cost table")
        add_backend(p)
        return p

    add_run("connectivity", "connected components (paper §6)")
    add_run("mis", "maximal independent set (paper §5)")
    add_run("matching", "maximal matching (extension)")
    add_run("coloring", "greedy (Δ+1)-coloring (extension)")
    add_run("msf", "minimum spanning forest (paper §7; weighted input)")
    add_run("two-cycle", "one cycle or two? (paper §4; 2-regular input)")
    add_run("bc", "bridges / articulation points / 2ECC (paper §9)")

    chaos = sub.add_parser(
        "chaos",
        help="run an algorithm under a fault plan and print the recovery "
             "ledger",
    )
    chaos.add_argument("algorithm", choices=["connectivity", "mis"],
                       help="algorithm to run under faults")
    chaos.add_argument("graph", help="edge-list file (u v per line)")
    chaos.add_argument("--epsilon", type=float, default=0.5)
    chaos.add_argument("--seed", type=int, default=0,
                       help="algorithm seed (placement, permutations)")
    chaos.add_argument("--fault-seed", type=int, default=1,
                       help="seed of the fault streams (independent of "
                            "--seed)")
    chaos.add_argument("--crash", type=float, default=0.2,
                       help="machine crash probability per attempt")
    chaos.add_argument("--outage", type=float, default=0.1,
                       help="DDS server outage probability per round")
    chaos.add_argument("--timeout", type=float, default=0.0,
                       help="transient read-timeout probability")
    chaos.add_argument("--straggler", type=float, default=0.0,
                       help="straggler probability per machine per round")
    chaos.add_argument("--replication", type=int, default=2,
                       help="replicas per key-value pair (failover depth)")
    chaos.add_argument("--kill-worker", type=float, default=0.0,
                       metavar="P",
                       help="real-process fault: SIGKILL a pool worker "
                            "mid-task with probability P per shard "
                            "(needs --backend process)")
    chaos.add_argument("--hang-worker", type=float, default=0.0,
                       metavar="P",
                       help="real-process fault: worker computes but "
                            "never replies (supervisor deadline fires)")
    chaos.add_argument("--delay-reply", type=float, default=0.0,
                       metavar="P",
                       help="real-process fault: delay a worker's reply "
                            "(straggler; may trigger hedging)")
    chaos.add_argument("--fork-fail", type=float, default=0.0,
                       metavar="P",
                       help="real-process fault: respawn fork attempts "
                            "fail with probability P")
    add_backend(chaos)
    chaos.add_argument("--no-verify", action="store_true",
                       help="skip the fault-free reference run and the "
                            "bit-identity check")
    chaos.add_argument("--no-ledger", action="store_true",
                       help="suppress the per-round cost table")

    verify = sub.add_parser(
        "verify",
        help="conformance sweep: algorithms x generators x seeds, with "
             "runtime invariant observers and differential oracles",
    )
    verify.add_argument("--algorithm", "-a", action="append", default=None,
                        metavar="NAME",
                        help="restrict to this algorithm (repeatable; "
                             "default: all registered)")
    verify.add_argument("--family", "-f", action="append", default=None,
                        metavar="NAME",
                        help="restrict to this generator family (repeatable)")
    verify.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="seed matrix (default: 0 1 for --smoke, "
                             "0 1 2 otherwise)")
    verify.add_argument("--size", type=int, default=None,
                        help="target instance size n (default by mode)")
    verify.add_argument("--smoke", action="store_true",
                        help="CI mode: small instances, two seeds")
    verify.add_argument("--chaos", action="store_true",
                        help="also replay chaos-capable algorithms under "
                             "the default fault plan")
    verify.add_argument("--vectorized", action="store_true",
                        help="run algorithms with a batch-engine variant "
                             "on the vectorized execution path (same "
                             "oracles, invariants, and ledger contract)")
    verify.add_argument("--process-faults", action="store_true",
                        help="arm the default real-process fault plan "
                             "(kill/hang/delay workers) for every cell; "
                             "requires --backend process — the serial "
                             "twin stays fault-free and must still be "
                             "bit-identical")
    add_backend(verify)
    verify.add_argument("--balance-slack", type=float, default=4.0,
                        help="constant factor over the Lemma 2.1 balance "
                             "bound (default 4.0)")
    verify.add_argument("--json", metavar="PATH", default=None,
                        help="write the JSON conformance report here "
                             "('-' for stdout)")
    verify.add_argument("--list", action="store_true",
                        help="list registered algorithms and families, "
                             "then exit")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress the per-cell progress lines")
    verify.add_argument("--observe-baseline", metavar="PATH",
                        default="benchmarks/BENCH_observe.json",
                        help="observability overhead baseline consulted by "
                             "the --smoke traced case (missing file skips "
                             "the overhead gate, not the schema checks)")

    trace = sub.add_parser(
        "trace",
        help="run one algorithm with the observability layer armed; "
             "export a Chrome/Perfetto trace, JSONL events, and a "
             "metrics snapshot, all reconciled against the cost ledger",
    )
    trace.add_argument("algorithm",
                       help="a registered algorithm (see `repro verify "
                            "--list`)")
    trace.add_argument("graph", nargs="?", default=None,
                       help="edge-list file; omit to generate a workload "
                            "with --family/--size")
    trace.add_argument("--family", default=None, metavar="NAME",
                       help="generator family for synthetic input "
                            "(default: the algorithm's first registered "
                            "family)")
    trace.add_argument("--size", type=int, default=200,
                       help="synthetic instance size n (default 200)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--vectorized", action="store_true",
                       help="trace the batch execution engine instead of "
                            "the scalar path")
    add_backend(trace)
    trace.add_argument("--detail", choices=["round", "machine", "op"],
                       default="machine",
                       help="trace granularity (default machine; op emits "
                            "one event per remote read/write)")
    trace.add_argument("--chrome", metavar="PATH", default="trace.json",
                       help="Chrome trace_event output for "
                            "chrome://tracing / Perfetto (default "
                            "trace.json; '-' to skip)")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="also write the raw JSONL event stream here")
    trace.add_argument("--metrics", metavar="PATH",
                       default="metrics.json",
                       help="metrics snapshot output (default "
                            "metrics.json; '-' to skip the file and print "
                            "to stdout)")
    trace.add_argument("--profile", action="store_true",
                       help="attribute wall time to simulator phases "
                            "with cProfile (adds real overhead)")
    trace.add_argument("--no-summary", action="store_true",
                       help="suppress the rendered timeline and metric "
                            "summary")

    perf = sub.add_parser(
        "perf",
        help="perf-regression harness: collect timestamped profiles, pin "
             "baselines, detect statistical degradations (exit 1), "
             "regenerate the checked-in BENCH_*.json files",
    )
    perf_sub = perf.add_subparsers(dest="perf_cmd", required=True)

    def add_store(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=".perf", metavar="DIR",
                       help="profile store root (default .perf)")
        p.add_argument("--suite", default="smoke",
                       help="bench suite (default smoke; see "
                            "`repro perf collect --list`)")

    p_collect = perf_sub.add_parser(
        "collect", help="run a bench suite and store a timestamped profile"
    )
    add_store(p_collect)
    p_collect.add_argument("--repeats", type=int, default=5,
                           help="samples per cell (default 5)")
    p_collect.add_argument("--warmup", type=int, default=1,
                           help="throwaway runs per cell (default 1)")
    p_collect.add_argument("--quick", action="store_true",
                           help="fast mode: tiny cell sizes (also "
                                "enabled by REPRO_BENCH_QUICK=1)")
    p_collect.add_argument("--label", default=None,
                           help="free-form label stored in the profile")
    p_collect.add_argument("--no-pin", action="store_true",
                           help="never auto-pin this profile as the "
                                "suite baseline (default: pin when the "
                                "suite has no baseline yet)")
    p_collect.add_argument("--list", action="store_true",
                           help="list registered suites and cells, exit")

    p_check = perf_sub.add_parser(
        "check",
        help="compare a candidate profile against the pinned baseline; "
             "exit 1 on degradation, 2 on host-fingerprint mismatch",
    )
    add_store(p_check)
    p_check.add_argument("--profile", default=None, metavar="ID",
                         help="candidate profile id (default: latest "
                              "stored profile of the suite)")
    p_check.add_argument("--baseline", default=None, metavar="NAME",
                         help="baseline name (default: the suite name)")
    p_check.add_argument("--collect", action="store_true",
                         help="measure a fresh candidate now instead of "
                              "loading the latest stored profile")
    p_check.add_argument("--repeats", type=int, default=5,
                         help="samples per cell with --collect")
    p_check.add_argument("--quick", action="store_true",
                         help="fast mode with --collect")
    p_check.add_argument("--threshold", type=float, default=0.05,
                         help="relative median-shift that matters "
                              "(default 0.05 = 5%%)")
    p_check.add_argument("--alpha", type=float, default=0.01,
                         help="Mann-Whitney significance level "
                              "(default 0.01)")
    p_check.add_argument("--allow-host-mismatch", action="store_true",
                         help="compare despite mismatched host "
                              "fingerprints (records warnings instead "
                              "of refusing)")
    p_check.add_argument("--json", metavar="PATH", default=None,
                         help="write the JSON check report here "
                              "('-' for stdout)")
    p_check.add_argument("--observe-baseline", metavar="PATH",
                         default=None,
                         help="also run the observability overhead gate "
                              "against this BENCH_observe.json baseline")

    p_baseline = perf_sub.add_parser(
        "baseline", help="pin, show, or list named baselines"
    )
    add_store(p_baseline)
    p_baseline.add_argument("--profile", default=None, metavar="ID",
                            help="profile to pin (default: latest stored "
                                 "profile of the suite)")
    p_baseline.add_argument("--name", default=None,
                            help="baseline name (default: the suite name)")
    p_baseline.add_argument("--note", default=None,
                            help="free-form note stored with the pin")
    p_baseline.add_argument("--show", action="store_true",
                            help="print the current pins and exit "
                                 "(no pinning)")

    p_report = perf_sub.add_parser(
        "report", help="per-cell median trajectory across stored profiles"
    )
    add_store(p_report)
    p_report.add_argument("--limit", type=int, default=8,
                          help="show at most the newest N profiles "
                               "(default 8)")

    p_regen = perf_sub.add_parser(
        "regen",
        help="regenerate the checked-in benchmarks/BENCH_*.json files "
             "from their bench modules (one entry point for perf "
             "history)",
    )
    p_regen.add_argument("--only", action="append", default=None,
                         choices=["observe", "parallel", "simulator",
                                  "resilience", "serve", "ingest"],
                         help="regenerate only this target (repeatable)")
    p_regen.add_argument("--quick", action="store_true",
                         help="smoke-test the regeneration pipeline with "
                              "tiny sizes, writing into .perf/regen/ "
                              "instead of overwriting benchmarks/")
    p_regen.add_argument("--bench-dir", default="benchmarks", metavar="DIR",
                         help="benchmark directory (default: benchmarks)")

    bench = sub.add_parser(
        "bench",
        help="run the benchmark suite under pytest (--quick for a tiny "
             "deterministic smoke sweep of every bench module)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smoke mode: keep only the smallest "
                            "parametrization of each benchmark, disable "
                            "timing, fail on any exception")
    bench.add_argument("--bench-dir", default="benchmarks", metavar="DIR",
                       help="benchmark directory (default: benchmarks)")
    bench.add_argument("-k", dest="keyword", default=None, metavar="EXPR",
                       help="forwarded to pytest -k")

    serve = sub.add_parser(
        "serve",
        help="build a resident serving engine and answer queries "
             "(LFMIS membership, connectivity, subtree aggregates) "
             "against its sealed state",
    )
    serve.add_argument("graph", nargs="?", default=None,
                       help="edge-list file; omit to generate an ER "
                            "workload with --size")
    serve.add_argument("--size", type=int, default=200,
                       help="synthetic instance size n (default 200; "
                            "m = 2n)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--epsilon", type=float, default=0.5)
    add_backend(serve)
    serve.add_argument("--query", action="append", default=None,
                       metavar="KIND:KEY[,KEY2]",
                       help="answer one request and print its ledger; "
                            "repeatable (kinds: mis_member, component_of, "
                            "same_component, subtree_size)")
    serve.add_argument("--workload", default="poisson-zipf",
                       help="named workload to demo when no --query is "
                            "given (default poisson-zipf)")
    serve.add_argument("--requests", type=int, default=50,
                       help="demo workload length (default 50)")

    loadgen = sub.add_parser(
        "loadgen",
        help="drive synthetic traffic at a resident serving engine; "
             "report sustained QPS + p50/p95/p99 per workload x backend "
             "(the BENCH_serve.json generator)",
    )
    loadgen.add_argument("graph", nargs="?", default=None,
                         help="edge-list file; omit to generate an ER "
                              "workload with --size")
    loadgen.add_argument("--size", type=int, default=400,
                         help="synthetic instance size n (default 400; "
                              "m = 2n)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--workloads", default=None, metavar="A,B,...",
                         help="comma-separated workload names (default: "
                              "all standard patterns)")
    loadgen.add_argument("--requests", type=int, default=None,
                         help="override n_requests per workload")
    loadgen.add_argument("--backends", default="serial", metavar="A,B",
                         help="comma-separated backends to compare "
                              "(default serial; e.g. serial,process)")
    loadgen.add_argument("--workers", type=int, default=None, metavar="N",
                         help="process-backend worker count")
    loadgen.add_argument("--max-queue", type=int, default=256,
                         help="admission-control queue bound (default 256)")
    loadgen.add_argument("--batch-window", type=int, default=32,
                         help="requests per scheduling tick (default 32)")
    loadgen.add_argument("--json", metavar="PATH", default=None,
                         help="write the BENCH_serve.json payload here "
                              "('-' for stdout)")

    stats_p = sub.add_parser("stats", help="describe a graph file")
    stats_p.add_argument("graph", help="edge-list file")

    ingest = sub.add_parser(
        "ingest",
        help="convert an edge-list file or RMAT spec into a "
             "memory-mapped binary CSR cache (out-of-core; see "
             "repro.graph.csr) and print its stats",
    )
    ingest.add_argument("source",
                        help="edge-list path, or an RMAT spec "
                             "'rmat:SCALE[:EDGE_FACTOR]' "
                             "(e.g. rmat:20:16)")
    ingest.add_argument("out", help="output CSR cache directory")
    ingest.add_argument("--seed", type=int, default=0,
                        help="RMAT seed (default 0)")
    ingest.add_argument("--chunk-edges", type=int, default=1 << 20,
                        metavar="K",
                        help="edges processed per chunk (bounds RSS; "
                             "default 2**20)")
    ingest.add_argument("--drop-self-loops", action="store_true",
                        help="silently drop u==u rows from edge-list "
                             "input instead of failing (RMAT input "
                             "always drops them)")
    ingest.add_argument("--force", action="store_true",
                        help="rebuild even if the cache directory "
                             "already holds a CSR cache")
    ingest.add_argument("--no-stats", action="store_true",
                        help="skip the graph-stats summary (avoids "
                             "touching every page of a huge cache)")

    gen = sub.add_parser("generate", help="write a synthetic workload")
    gen.add_argument("family", choices=["er", "ba", "grid", "cycle",
                                        "two-cycle", "tree"])
    gen.add_argument("params", nargs="+",
                     help="er: n m | ba: n k | grid: rows cols | "
                          "cycle: n | two-cycle: n | tree: n")
    gen.add_argument("out", help="output edge-list path")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--weighted", action="store_true",
                     help="attach distinct random weights")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _generate(args)
    if args.command == "chaos":
        return _chaos(args)
    if args.command == "verify":
        return _verify(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "perf":
        return _perf(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "loadgen":
        return _loadgen(args)
    if args.command == "stats":
        from repro.graph import files, stats

        graph = files.read_edge_list(args.graph)
        print(stats.graph_stats(graph).format())
        return 0
    if args.command == "ingest":
        return _ingest(args)
    return _run(args)


def _ingest(args) -> int:
    """Build an on-disk CSR cache from an edge list or RMAT spec."""
    from repro.graph import csr, files, generators, stats

    out = args.out
    if csr.is_cache(out) and not args.force:
        graph = csr.MmapGraph.load(out)
        print(f"cache up to date: {graph!r} (use --force to rebuild)")
        return 0

    spec = str(args.source)
    if spec.startswith("rmat:"):
        fields = spec.split(":")[1:]
        if not 1 <= len(fields) <= 2:
            print(f"bad RMAT spec {spec!r}: want rmat:SCALE[:EDGE_FACTOR]",
                  file=sys.stderr)
            return 2
        try:
            scale = int(fields[0])
            edge_factor = int(fields[1]) if len(fields) == 2 else 16
        except ValueError:
            print(f"bad RMAT spec {spec!r}: want rmat:SCALE[:EDGE_FACTOR]",
                  file=sys.stderr)
            return 2
        n = 1 << scale
        chunks = generators.rmat_edge_chunks(
            scale, edge_factor, rng=args.seed,
            chunk_edges=args.chunk_edges)
        graph = csr.build_csr(chunks, n, out,
                              chunk_edges=args.chunk_edges,
                              drop_self_loops=True)
    else:
        edges, n = files.load_edge_cache(args.source)
        graph = csr.build_csr(edges, n, out,
                              chunk_edges=args.chunk_edges,
                              drop_self_loops=args.drop_self_loops)
    print(f"built {graph!r}")
    if not args.no_stats:
        print(stats.graph_stats(graph).format())
    return 0


def _generate(args) -> int:
    from repro.graph import files, generators

    p = [int(x) for x in args.params]
    if args.family == "er":
        g = generators.erdos_renyi_gnm(p[0], p[1], rng=args.seed)
    elif args.family == "ba":
        g = generators.barabasi_albert(p[0], p[1], rng=args.seed)
    elif args.family == "grid":
        g = generators.grid(p[0], p[1])
    elif args.family == "cycle":
        g = generators.cycle(p[0])
    elif args.family == "two-cycle":
        g, _ = generators.random_two_cycle_instance(p[0], rng=args.seed)
    else:  # tree
        g = generators.random_tree(p[0], rng=args.seed)
    if args.weighted:
        g = generators.with_random_weights(g, rng=args.seed)
    files.write_edge_list(g, args.out)
    print(f"wrote {args.family} graph: n={g.n} m={g.m} -> {args.out}")
    return 0


def _bench(args) -> int:
    """``repro bench [--quick]`` — pytest over the benchmark directory.

    ``--quick`` sets ``REPRO_BENCH_QUICK=1`` (the benchmark conftest
    keeps only the smallest parametrization of each test) and disables
    timing, so the sweep exercises every bench module end to end in
    seconds and fails on any exception.
    """
    import os
    import subprocess

    import repro

    if not os.path.isdir(args.bench_dir):
        print(f"benchmark directory not found: {args.bench_dir}",
              file=sys.stderr)
        return 2

    env = dict(os.environ)
    # Make sure the subprocess resolves the same `repro` package.
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")

    cmd = [sys.executable, "-m", "pytest", args.bench_dir, "-q",
           "-p", "no:cacheprovider"]
    if args.quick:
        env["REPRO_BENCH_QUICK"] = "1"
        cmd.append("--benchmark-disable")
    if args.keyword:
        cmd += ["-k", args.keyword]

    mode = "quick smoke" if args.quick else "full"
    print(f"bench: {mode} sweep of {args.bench_dir}/ "
          f"({' '.join(cmd[2:])})")
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        print(f"bench: FAILED (pytest exit {proc.returncode})",
              file=sys.stderr)
    return proc.returncode


def _perf(args) -> int:
    """``repro perf collect|check|baseline|report|regen`` dispatch."""
    handlers = {
        "collect": _perf_collect,
        "check": _perf_check,
        "baseline": _perf_baseline,
        "report": _perf_report,
        "regen": _perf_regen,
    }
    return handlers[args.perf_cmd](args)


def _perf_collect(args) -> int:
    from repro.perf import ProfileStore, collect, suite_names, suite_specs

    if args.list:
        for suite in suite_names():
            cells = " ".join(s.cell for s in suite_specs(suite))
            print(f"{suite}: {cells}")
        return 0
    if args.suite not in suite_names():
        print(f"unknown suite {args.suite!r}; registered: "
              f"{' '.join(suite_names())}", file=sys.stderr)
        return 2

    quick = args.quick or None  # None -> honor REPRO_BENCH_QUICK
    print(f"perf collect: suite={args.suite} repeats={args.repeats} "
          f"warmup={args.warmup}")

    def progress(cell: str, median_s: float) -> None:
        print(f"  {cell}: median {median_s * 1e3:.1f}ms")

    profile = collect(args.suite, repeats=args.repeats, warmup=args.warmup,
                      quick=quick, label=args.label, progress=progress)
    store = ProfileStore(args.store)
    profile_id = store.save(profile)
    print(f"stored profile {profile_id} "
          f"(host_cores={profile.host['host_cores']}, "
          f"commit={profile.host.get('commit')})")
    if store.get_baseline(args.suite) is None and not args.no_pin:
        store.set_baseline(args.suite, profile_id,
                           note="auto-pinned by first collect")
        print(f"pinned baseline {args.suite!r} -> {profile_id} "
              f"(first profile of this suite)")
    return 0


def _perf_check(args) -> int:
    from repro.perf import (
        DetectorConfig,
        HostMismatchError,
        ProfileStore,
        check_to_json,
        collect,
        compare_profiles,
        observe_overhead_gate,
        render_check,
    )

    human = sys.stderr if args.json == "-" else sys.stdout
    store = ProfileStore(args.store)
    baseline_name = args.baseline or args.suite
    baseline = store.baseline_profile(baseline_name)
    if baseline is None:
        print(f"no baseline {baseline_name!r} pinned in {args.store} — "
              f"run `repro perf collect --suite {args.suite}` then "
              f"`repro perf baseline --suite {args.suite}`",
              file=sys.stderr)
        return 2

    if args.collect:
        candidate = collect(args.suite, repeats=args.repeats,
                            quick=args.quick or None, label="check")
        candidate.profile_id = "<fresh>"
    elif args.profile is not None:
        candidate = store.load(args.profile)
    else:
        latest = store.latest(args.suite)
        if latest is None:
            print(f"no stored profiles for suite {args.suite!r} in "
                  f"{args.store}; run `repro perf collect` or pass "
                  f"--collect", file=sys.stderr)
            return 2
        candidate = store.load(latest)

    config = DetectorConfig(shift_threshold=args.threshold,
                            alpha=args.alpha)
    try:
        result = compare_profiles(
            baseline, candidate, config=config,
            allow_host_mismatch=args.allow_host_mismatch,
        )
    except HostMismatchError as exc:
        for problem in exc.problems:
            print(f"host mismatch: {problem}", file=sys.stderr)
        print("refusing to compare (use --allow-host-mismatch to "
              "override); profiles are only comparable on the host "
              "that produced the baseline", file=sys.stderr)
        return 2

    print(render_check(result), file=human)

    gate_ok = True
    if args.observe_baseline is not None:
        gate = observe_overhead_gate(args.observe_baseline)
        gate_ok = gate["ok"]
        if gate["skipped"]:
            print(f"observe overhead gate: skipped (no baseline at "
                  f"{args.observe_baseline})", file=human)
        else:
            print(f"observe overhead gate: armed {gate['armed_pct']:+.1f}% "
                  f"vs gate {gate['allowed_pct']:.1f}% "
                  f"[{'ok' if gate_ok else 'FAIL'}]", file=human)
            for problem in gate["problems"]:
                print(f"  {problem}", file=human)

    if args.json == "-":
        print(check_to_json(result))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(check_to_json(result) + "\n")
        print(f"wrote JSON check report -> {args.json}", file=human)

    return 0 if (result.ok and gate_ok) else 1


def _perf_baseline(args) -> int:
    from repro.perf import ProfileStore

    store = ProfileStore(args.store)
    if args.show:
        pins = store.baselines()
        if not pins:
            print(f"(no baselines pinned in {args.store})")
        for name, pin in sorted(pins.items()):
            print(f"{name}: {pin.profile} (pinned {pin.pinned_utc}"
                  + (f", {pin.note}" if pin.note else "") + ")")
        return 0
    profile_id = args.profile or store.latest(args.suite)
    if profile_id is None:
        print(f"no stored profiles for suite {args.suite!r} in "
              f"{args.store}; run `repro perf collect` first",
              file=sys.stderr)
        return 2
    name = args.name or args.suite
    try:
        pin = store.set_baseline(name, profile_id, note=args.note)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"pinned baseline {name!r} -> {pin.profile}")
    return 0


def _perf_report(args) -> int:
    from repro.perf import ProfileStore, render_history

    store = ProfileStore(args.store)
    ids = store.ids(args.suite)[-max(1, args.limit):]
    if not ids:
        print(f"(no stored profiles for suite {args.suite!r} in "
              f"{args.store})")
        return 0
    pin = store.get_baseline(args.suite)
    profiles = [store.load(profile_id) for profile_id in ids]
    print(render_history(profiles,
                         baseline_id=pin.profile if pin else None))
    return 0


def _perf_regen(args) -> int:
    """Regenerate the checked-in BENCH_*.json files in one entry point.

    Full mode overwrites the files under ``benchmarks/``; ``--quick``
    smoke-tests each regeneration pipeline at tiny sizes into
    ``.perf/regen/`` so nothing checked-in is clobbered with
    quick-sized data.
    """
    import os
    import subprocess

    import repro

    bench_dir = args.bench_dir
    if not os.path.isdir(bench_dir):
        print(f"benchmark directory not found: {bench_dir}",
              file=sys.stderr)
        return 2
    out_dir = bench_dir if not args.quick else os.path.join(
        ".perf", "regen")
    os.makedirs(out_dir, exist_ok=True)

    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    if args.quick:
        env["REPRO_BENCH_QUICK"] = "1"

    def script(name: str) -> str:
        return os.path.join(bench_dir, name)

    targets = {
        "observe": [sys.executable, script("bench_observe_overhead.py"),
                    os.path.join(out_dir, "BENCH_observe.json")],
        "parallel": [sys.executable, script("bench_parallel.py"),
                     "--out", os.path.join(out_dir, "BENCH_parallel.json")]
                    + (["--quick"] if args.quick else []),
        "simulator": [sys.executable, script("bench_simulator_overhead.py"),
                      os.path.join(out_dir, "BENCH_simulator.json")],
        "resilience": [sys.executable, script("bench_resilience.py")],
        "serve": [sys.executable, script("bench_serve.py"),
                  "--out", os.path.join(out_dir, "BENCH_serve.json")]
                 + (["--quick"] if args.quick else []),
        "ingest": [sys.executable, script("bench_ingest.py"),
                   "--out", os.path.join(out_dir, "BENCH_ingest.json")]
                  + (["--quick"] if args.quick else []),
    }
    wanted = args.only or list(targets)
    if args.quick and "resilience" in wanted and args.only is None:
        # bench_resilience writes next to its own file and has no quick
        # knob; skip it in quick mode unless explicitly requested.
        wanted = [t for t in wanted if t != "resilience"]
        print("regen: skipping resilience in --quick mode (no quick "
              "sizes; run without --quick or with --only resilience)")

    failed = []
    for target in wanted:
        print(f"regen: {target} -> {' '.join(targets[target][1:])}")
        proc = subprocess.run(targets[target], env=env)
        if proc.returncode != 0:
            failed.append(target)
            print(f"regen: {target} FAILED (exit {proc.returncode})",
                  file=sys.stderr)
    if failed:
        return 1
    print(f"regen: {len(wanted)} target(s) ok -> {out_dir}/")
    return 0


def _verify(args) -> int:
    from repro.verify import case_names, verify_sweep
    from repro.verify.runner import family_names

    if args.list:
        print("algorithms:", " ".join(case_names()))
        print("families:  ", " ".join(family_names()))
        return 0

    if args.process_faults and args.backend != "process":
        print("--process-faults injects real worker faults and needs "
              "--backend process", file=sys.stderr)
        return 2

    # With `--json -` the report owns stdout; human lines go to stderr.
    human = sys.stderr if args.json == "-" else sys.stdout

    def progress(record) -> None:
        marker = "ok " if record.ok else "FAIL"
        print(f"  [{marker}] {record.algorithm:20s} "
              f"{record.family:18s} seed={record.seed} "
              f"n={record.n} rounds={record.rounds}", file=human)

    report = verify_sweep(
        algorithms=args.algorithm,
        families=args.family,
        seeds=args.seeds,
        size=args.size,
        smoke=args.smoke,
        chaos=args.chaos,
        vectorized=args.vectorized,
        backend=args.backend,
        workers=args.workers,
        process_faults=args.process_faults,
        balance_slack=args.balance_slack,
        progress=None if args.quiet else progress,
    )

    summary = report.summary()
    print(f"verify: {summary['cells']} cells, "
          f"{summary['failed']} failed, "
          f"{summary['invariant_violations']} invariant violations, "
          f"{summary['oracle_disagreements']} oracle disagreements, "
          f"{summary['nondeterministic']} nondeterministic", file=human)
    if not report.ok:
        print(report.format_failures(), file=human)

    if args.json == "-":
        print(report.to_json())
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote JSON report -> {args.json}")

    observe_ok = True
    backend_ok = True
    perf_ok = True
    vectorized_ok = True
    serve_ok = True
    ingest_ok = True
    if args.smoke:
        observe_ok = _traced_smoke(args.observe_baseline, human)
        if args.backend == "serial":
            # The sweep above ran serial; add one process-backend cell
            # so smoke always exercises the cross-backend oracle.
            backend_ok = _process_smoke(human)
        if not args.vectorized:
            # The sweep above ran scalar; add one vectorized cell so
            # smoke always exercises the batch engine's oracle too.
            vectorized_ok = _vectorized_smoke(human)
        perf_ok = _perf_smoke(human)
        serve_ok = _serve_smoke(human)
        ingest_ok = _ingest_smoke(human)
    return 0 if (report.ok and observe_ok and backend_ok
                 and vectorized_ok and perf_ok and serve_ok
                 and ingest_ok) else 1


def _vectorized_smoke(human) -> bool:
    """The vectorized smoke cell of ``repro verify --smoke``.

    One MIS cell on the batch engine (`vectorized=True`): the
    differential oracle against ``sequential_lfmis`` plus the usual
    invariant observers must pass on the vectorized path.
    """
    from repro.verify.oracles import CASES
    from repro.verify.runner import SMOKE_SIZE, _run_cell

    record = _run_cell(CASES["mis"], "er", SMOKE_SIZE, 0,
                       balance_slack=4.0, chaos=False, vectorized=True)
    cell_ok = record.ok and record.vectorized
    print(f"  [{'ok ' if cell_ok else 'FAIL'}] vectorized: "
          f"mis er n={record.n} batch-engine path", file=human)
    if record.error:
        print(f"    vectorized smoke error: {record.error}", file=human)
    return cell_ok


def _perf_smoke(human) -> bool:
    """The perf-smoke cell of ``repro verify --smoke``.

    Collects the smoke suite at tiny quick sizes into a temporary
    profile store, pins the profile as its own baseline, and checks it
    against that just-written baseline: every cell must classify as
    no-change (identical samples), and the profile must conform to the
    observe/export JSONL schema. No wall-clock thresholds — the cell
    cannot flake on a loaded CI host.
    """
    from repro.verify.runner import perf_smoke_cell

    outcome = perf_smoke_cell()
    print(f"  [{'ok ' if outcome['ok'] else 'FAIL'}] perf smoke: "
          f"collect+self-check, {outcome['cells']} cells no-change",
          file=human)
    for problem in outcome["problems"]:
        print(f"    perf smoke problem: {problem}", file=human)
    return outcome["ok"]


def _serve_smoke(human) -> bool:
    """The serve smoke cell of ``repro verify --smoke``.

    Builds a tiny resident engine, replays a 50-request mixed workload
    through the scheduler, oracle-checks every answer, reconciles the
    per-request ledgers against the tick rows and observe counters, and
    exercises admission-control rejection accounting. No wall-clock
    thresholds.
    """
    from repro.verify.runner import serve_smoke_cell

    outcome = serve_smoke_cell()
    print(f"  [{'ok ' if outcome['ok'] else 'FAIL'}] serve smoke: "
          f"resident engine, {outcome['requests']} requests "
          f"ledger-reconciled, {outcome['rejected']} shed", file=human)
    for problem in outcome["problems"]:
        print(f"    serve smoke problem: {problem}", file=human)
    return outcome["ok"]


def _ingest_smoke(human) -> bool:
    """The ingest smoke cell of ``repro verify --smoke``.

    Round-trips a small graph through the binary edge cache and the
    out-of-core CSR builder, then runs connectivity and MIS from the
    mmap-backed graph on both the scalar and array-native setup paths:
    results AND per-round cost ledgers must be bit-identical to the
    in-memory ``Graph`` baseline. No wall-clock thresholds.
    """
    from repro.verify.runner import ingest_smoke_cell

    outcome = ingest_smoke_cell()
    print(f"  [{'ok ' if outcome['ok'] else 'FAIL'}] ingest smoke: "
          f"mmap CSR n={outcome['n']} m={outcome['m']}, "
          f"{outcome['checks']} parity checks", file=human)
    for problem in outcome["problems"]:
        print(f"    ingest smoke problem: {problem}", file=human)
    return outcome["ok"]


def _serve_graph(args):
    """Load the edge-list, or generate the default ER serving instance."""
    from repro.graph import files, generators

    if args.graph is not None:
        return files.read_edge_list(args.graph), args.graph
    n = args.size
    return (generators.erdos_renyi_gnm(n, 2 * n, rng=args.seed),
            f"er(n={n}, m={2 * n})")


def _parse_query(spec: str):
    from repro.serve import ServeRequest

    kind, _, keys = spec.partition(":")
    parts = [p for p in keys.split(",") if p]
    if not parts:
        raise SystemExit(f"malformed --query {spec!r}; expected "
                         f"KIND:KEY[,KEY2]")
    key = int(parts[0])
    key2 = int(parts[1]) if len(parts) > 1 else -1
    return ServeRequest(kind=kind, key=key, key2=key2)


def _serve(args) -> int:
    """``repro serve`` — build a resident engine, answer queries."""
    from repro.serve import ServingEngine, run_loadgen, workload_config

    graph, source = _serve_graph(args)
    engine = ServingEngine(graph, epsilon=args.epsilon, seed=args.seed,
                           backend=args.backend, n_workers=args.workers)
    s = engine.summary()
    print(f"resident engine over {source}: n={s['n']} m={s['m']} "
          f"components={s['n_components']} backend={s['backend']} "
          f"(built in {s['build_rounds']} rounds)")
    if args.query:
        for spec in args.query:
            resp = engine.execute_one(_parse_query(spec))
            print(f"  {spec:32s} -> {resp.value!r}  "
                  f"[reads={resp.reads} writes={resp.writes} "
                  f"query_calls={resp.query_calls}]")
        problems = engine.reconcile()
        for problem in problems:
            print(f"  ledger problem: {problem}", file=sys.stderr)
        return 0 if not problems else 1
    cfg = workload_config(args.workload, n_requests=args.requests,
                          seed=args.seed)
    result = run_loadgen(engine, cfg)
    row = result.summary()
    print(f"  workload {row['workload']}: {row['completed']} served, "
          f"{row['rejected']} shed, qps={row['qps']:.0f}, "
          f"p50={row['p50_ms']:.3f}ms p99={row['p99_ms']:.3f}ms, "
          f"reconciled={row['reconciled']}")
    return 0 if row["reconciled"] else 1


def _loadgen(args) -> int:
    """``repro loadgen`` — the workload x backend benchmark grid."""
    import json as _json

    from repro.serve import (
        STANDARD_WORKLOADS, AdmissionControl, loadgen_matrix,
    )

    graph, source = _serve_graph(args)
    names = (args.workloads.split(",") if args.workloads
             else sorted(STANDARD_WORKLOADS))
    backends = args.backends.split(",")
    admission = AdmissionControl(max_queue=args.max_queue,
                                 batch_window=args.batch_window)
    payload = loadgen_matrix(
        graph, workloads=names, backends=backends,
        n_requests=args.requests, seed=args.seed, n_workers=args.workers,
        admission=admission,
    )
    payload["source"] = source
    print(f"loadgen over {source}: {len(names)} workloads x "
          f"{len(backends)} backends")
    header = (f"  {'workload':18s} {'backend':8s} {'served':>7s} "
              f"{'shed':>5s} {'qps':>9s} {'p50ms':>8s} {'p99ms':>8s} ok")
    print(header)
    all_ok = True
    for row in payload["rows"]:
        all_ok &= row["reconciled"]
        print(f"  {row['workload']:18s} {row['backend']:8s} "
              f"{row['completed']:7d} {row['rejected']:5d} "
              f"{row['qps']:9.0f} {row['p50_ms']:8.3f} "
              f"{row['p99_ms']:8.3f} "
              f"{'yes' if row['reconciled'] else 'NO'}")
    if args.json == "-":
        print(_json.dumps(payload, indent=2))
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if all_ok else 1


def _process_smoke(human) -> bool:
    """The process-backend smoke cell of ``repro verify --smoke``.

    Runs connectivity, list-ranking, and MIS cells on the process
    backend (2 workers) and requires bit-identical results and
    per-round ledgers against their serial twins (the
    ``backend_identical`` oracle in :func:`verify_sweep`'s cells),
    then one worker-crash-recovery cell with the default real-process
    fault plan armed (SIGKILL/hang/delay at 10% each).
    """
    from repro.parallel import RecoveryPolicy, use_recovery
    from repro.verify.oracles import CASES
    from repro.verify.runner import (
        SMOKE_SIZE,
        _run_cell,
        default_process_fault_plan,
    )

    ok = True
    for name, family in (("connectivity", "er"),
                         ("list-ranking", "list-uniform"),
                         ("mis", "er")):
        case = CASES[name]
        record = _run_cell(case, family, SMOKE_SIZE, 0,
                           balance_slack=4.0, chaos=False,
                           backend="process", workers=2)
        cell_ok = record.ok and record.backend_identical is True
        ok = ok and cell_ok
        print(f"  [{'ok ' if cell_ok else 'FAIL'}] process backend: "
              f"{name} {family} n={record.n} bit-identical="
              f"{record.backend_identical}", file=human)
        if record.error:
            print(f"    process backend error: {record.error}",
                  file=human)

    # Worker-crash-recovery cell: workers are really SIGKILLed, hung,
    # and delayed mid-round; the supervisor must recover every shard and
    # the answer must still be bit-identical to the fault-free serial
    # twin. The tight deadline turns dropped replies into fast respawns.
    case = CASES["connectivity"]
    with use_recovery(RecoveryPolicy(task_deadline_s=10.0)):
        record = _run_cell(
            case, "er", SMOKE_SIZE, 0,
            balance_slack=4.0, chaos=False,
            backend="process", workers=2,
            process_faults=default_process_fault_plan(3),
        )
    cell_ok = record.ok and record.backend_identical is True
    ok = ok and cell_ok
    print(f"  [{'ok ' if cell_ok else 'FAIL'}] worker-crash recovery: "
          f"connectivity er n={record.n} (kill/hang/delay 10%) "
          f"bit-identical={record.backend_identical}", file=human)
    if record.error:
        print(f"    worker-crash recovery error: {record.error}",
              file=human)
    return ok


def _traced_smoke(baseline_path: str, human) -> bool:
    """The traced smoke case of ``repro verify --smoke``.

    Runs one connectivity cell inside a :class:`TracingSession`, checks
    the exported trace against the schema and the cost ledger, then
    guards the armed-overhead budget against the checked-in baseline
    via :func:`repro.perf.observe_overhead_gate` (the same retry-
    tolerant gate ``repro perf check --observe-baseline`` runs).
    """
    from repro.observe import (
        TracingSession,
        reconcile_metrics,
        reconcile_with_report,
        to_chrome_trace,
        to_records,
        validate_chrome,
        validate_records,
    )
    from repro.perf import observe_overhead_gate
    from repro.verify.oracles import CASES
    from repro.verify.runner import make_workload

    problems: list[str] = []
    case = CASES["connectivity"]
    workload = make_workload(case, "er", 300, 0)
    with TracingSession(detail="machine") as session:
        result = case.run(workload, 0)
    report = case.report_of(result)
    problems += validate_records(to_records(session.events))
    problems += validate_chrome(to_chrome_trace(session.events))
    problems += reconcile_with_report(session.events, report)
    problems += reconcile_metrics(session.snapshot, report)
    print(f"  [{'ok ' if not problems else 'FAIL'}] traced smoke: "
          f"connectivity er n=300, {len(session.events)} events, "
          f"schema+ledger reconciled", file=human)

    gate = observe_overhead_gate(baseline_path)
    if gate["skipped"]:
        print(f"  [skip] observe overhead gate: no baseline at "
              f"{baseline_path}", file=human)
    else:
        problems += gate["problems"]
        print(f"  [{'ok ' if gate['ok'] else 'FAIL'}] observe "
              f"overhead: armed {gate['armed_pct']:+.1f}% vs gate "
              f"{gate['allowed_pct']:.1f}%", file=human)

    for p in problems:
        print(f"    traced smoke problem: {p}", file=human)
    return not problems


def _trace(args) -> int:
    import json

    from repro.analysis import render_timeline
    from repro.observe import (
        TracingSession,
        reconcile_metrics,
        reconcile_with_report,
        to_chrome_trace,
        validate_chrome,
        validate_records,
        to_records,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.verify.oracles import CASES, Workload
    from repro.verify.runner import make_workload

    if args.algorithm not in CASES:
        print(f"unknown algorithm {args.algorithm!r}; registered: "
              f"{' '.join(CASES)}", file=sys.stderr)
        return 2
    case = CASES[args.algorithm]

    if args.graph is not None:
        if case.kind not in ("graph", "weighted"):
            print(f"{case.name} consumes generated {case.kind!r} "
                  f"instances; drop the graph file and use --family/"
                  f"--size", file=sys.stderr)
            return 2
        from repro.graph import files

        if case.kind == "weighted":
            payload = files.read_weighted_edge_list(args.graph)
        else:
            payload = files.read_edge_list(args.graph)
        workload = Workload(family="file", kind=case.kind,
                            payload=payload, seed=args.seed)
        source = args.graph
    else:
        family = args.family or case.families[0]
        if family not in case.families:
            print(f"{case.name} does not accept family {family!r} "
                  f"(choices: {' '.join(case.families)})",
                  file=sys.stderr)
            return 2
        workload = make_workload(case, family, args.size, args.seed)
        n, m = workload.size
        source = f"{family} n={n} m={m}"

    run = case.run
    if args.vectorized:
        if case.run_vectorized is None:
            print(f"{case.name} has no vectorized variant",
                  file=sys.stderr)
            return 2
        run = case.run_vectorized

    path = "vectorized" if args.vectorized else "scalar"
    print(f"tracing {case.name} on {source} "
          f"({path} path, detail={args.detail}, "
          f"backend={args.backend})")

    from repro.parallel import use_backend

    with use_backend(args.backend, args.workers):
        with TracingSession(detail=args.detail, metrics=True,
                            profile=args.profile) as session:
            result = run(workload, args.seed)
    report = case.report_of(result)

    # Schema + ledger reconciliation: a trace that disagrees with the
    # cost ledger is worse than no trace, so failure is an error exit.
    problems = validate_records(to_records(session.events))
    problems += validate_chrome(to_chrome_trace(session.events))
    if report is not None:
        problems += reconcile_with_report(session.events, report)
        problems += reconcile_metrics(session.snapshot, report)

    if args.chrome != "-":
        write_chrome_trace(session.events, args.chrome)
        print(f"wrote Chrome trace -> {args.chrome}  "
              f"(load in chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(session.events, args.jsonl)
        print(f"wrote JSONL events -> {args.jsonl}")
    if args.metrics == "-":
        print(json.dumps(session.snapshot, indent=2, sort_keys=True))
    elif args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(session.snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote metrics snapshot -> {args.metrics}")

    if not args.no_summary and report is not None:
        counters = session.snapshot.get("counters", {})
        print()
        print(f"{len(session.events)} trace events, "
              f"{report.n_rounds} rounds, "
              f"reads={report.total_reads} writes={report.total_writes} "
              f"(ledger == trace == metrics: {not problems})")
        scalar_r = counters.get("ops.scalar_reads", 0)
        batch_r = counters.get("ops.batch_read_elems", 0)
        if scalar_r or batch_r:
            print(f"read mix: {scalar_r} scalar, {batch_r} batched")
        print()
        print(render_timeline(report))
        if session.breakdown is not None:
            print()
            print(session.breakdown.format_table())

    if problems:
        print()
        for p in problems:
            print(f"trace problem: {p}", file=sys.stderr)
        return 1
    return 0


def _chaos(args) -> int:
    import numpy as np

    from repro.algorithms.connectivity import connectivity
    from repro.algorithms.mis import maximal_independent_set
    from repro.analysis import render_recovery_table
    from repro.core.chaos import ChaosRuntime, FaultPlan, ProcessFaultPlan
    from repro.core.config import AMPCConfig
    from repro.graph import files

    graph = files.read_edge_list(args.graph)
    print(f"loaded {graph!r} from {args.graph}")

    config = AMPCConfig.for_input(
        max(graph.n + graph.m, 1),
        epsilon=args.epsilon,
        seed=args.seed,
        replication_factor=args.replication,
    )
    process_rates = (args.kill_worker, args.hang_worker,
                     args.delay_reply, args.fork_fail)
    process = None
    if any(process_rates):
        if args.backend != "process":
            print("--kill-worker/--hang-worker/--delay-reply/--fork-fail "
                  "inject real process faults and need --backend process",
                  file=sys.stderr)
            return 2
        process = ProcessFaultPlan(
            seed=args.fault_seed,
            kill_probability=args.kill_worker,
            hang_probability=args.hang_worker,
            delay_probability=args.delay_reply,
            fork_failure_probability=args.fork_fail,
        )
    plan = FaultPlan(
        seed=args.fault_seed,
        machine_crash_probability=args.crash,
        server_outage_probability=args.outage,
        read_timeout_probability=args.timeout,
        straggler_probability=args.straggler,
        process=process,
    )
    print(f"fault plan: crash={args.crash} outage={args.outage} "
          f"timeout={args.timeout} straggler={args.straggler} "
          f"replication={config.replication_factor} seed={args.fault_seed}")
    if process is not None:
        print(f"process faults: kill={args.kill_worker} "
              f"hang={args.hang_worker} delay={args.delay_reply} "
              f"fork-fail={args.fork_fail} "
              f"(backend={args.backend}, workers={args.workers or 'auto'})")

    runtime = ChaosRuntime(config, plan=plan, backend=args.backend,
                           n_workers=args.workers)
    if args.algorithm == "connectivity":
        res = connectivity(graph, runtime=runtime)
        print(f"components: {res.n_components} "
              f"(phases: {res.phases}, rounds: {res.report.n_rounds})")
        answer = res.labels
    else:
        res = maximal_independent_set(graph, runtime=runtime)
        print(f"|MIS| = {res.vertices.size} "
              f"(iterations: {res.iterations}, rounds: {res.report.n_rounds})")
        answer = res.in_mis

    if not args.no_verify:
        if args.algorithm == "connectivity":
            clean = connectivity(graph, config=config).labels
        else:
            clean = maximal_independent_set(graph, config=config).in_mis
        identical = bool(np.array_equal(answer, clean))
        print(f"bit-identical to fault-free run: {identical}")
        if not identical:
            return 1

    print()
    print(render_recovery_table(res.report))
    if not args.no_ledger:
        print()
        print(res.report.format_table())
    return 0


def _run(args) -> int:
    import contextlib

    from repro.graph import files
    from repro.parallel import use_backend

    if args.command == "msf":
        graph = files.read_weighted_edge_list(args.graph)
    else:
        graph = files.read_edge_list(args.graph)
    print(f"loaded {graph!r} from {args.graph}")
    if args.backend != "serial":
        print(f"backend: {args.backend} "
              f"(workers={args.workers or 'auto'})")

    backend_ctx = (use_backend(args.backend, args.workers)
                   if args.backend != "serial"
                   else contextlib.nullcontext())
    with backend_ctx:
        return _run_dispatch(args, graph)


def _run_dispatch(args, graph) -> int:
    import repro

    kwargs = dict(epsilon=args.epsilon, seed=args.seed)
    if args.command == "connectivity":
        res = repro.connectivity(graph, **kwargs)
        print(f"components: {res.n_components} "
              f"(phases: {res.phases}, rounds: {res.report.n_rounds})")
    elif args.command == "mis":
        res = repro.maximal_independent_set(graph, **kwargs)
        print(f"|MIS| = {res.vertices.size} "
              f"(iterations: {res.iterations}, rounds: {res.report.n_rounds})")
    elif args.command == "matching":
        res = repro.maximal_matching(graph, **kwargs)
        print(f"|matching| = {res.edge_ids.size} "
              f"(iterations: {res.iterations}, rounds: {res.report.n_rounds})")
    elif args.command == "coloring":
        res = repro.greedy_coloring(graph, **kwargs)
        print(f"colors used: {res.n_colors} "
              f"(iterations: {res.iterations}, rounds: {res.report.n_rounds})")
    elif args.command == "msf":
        res = repro.minimum_spanning_forest(graph, **kwargs)
        print(f"MSF: {res.edge_ids.size} edges, "
              f"total weight {res.total_weight:.6g} "
              f"(phases: {res.phases}, rounds: {res.report.n_rounds})")
    elif args.command == "two-cycle":
        res = repro.two_cycle(graph, **kwargs)
        answer = "two cycles" if res.is_two_cycles else "one cycle"
        print(f"answer: {answer} (lengths {res.cycle_lengths}, "
              f"rounds: {res.report.n_rounds})")
    elif args.command == "bc":
        res = repro.bc_labeling(graph, **kwargs)
        print(f"bridges: {res.bridges.shape[0]}, "
              f"articulation points: {res.articulation_points.size}, "
              f"2-edge-connected components: "
              f"{int(np.unique(res.two_edge_labels).size)} "
              f"(rounds: {res.report.n_rounds})")
    else:  # pragma: no cover - argparse prevents this
        raise SystemExit(f"unknown command {args.command}")

    if not args.no_ledger:
        print()
        print(res.report.format_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
