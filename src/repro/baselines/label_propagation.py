"""MPC connectivity baselines: label propagation (Θ(D)) and Borůvka-style
hooking (Θ(log n)).

Figure 1's MPC column for connectivity is Andoni et al.'s
O(log D · log log_{m/n} n); its machinery *without adaptive reads* is the
graph-exponentiation framework whose inner loop costs O(log D) squaring
rounds per phase. The two baselines here bracket MPC practice:

* :func:`label_propagation` — each round every vertex adopts the minimum
  label in its closed neighborhood; converges in Θ(D) rounds. This is the
  diameter dependence the AMPC algorithm removes.
* :func:`hooking_connectivity` — min-id hooking + pointer jumping per
  iteration (Borůvka-style), Θ(log n) iterations independent of D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import AMPCConfig
from repro.core.cost import RunReport
from repro.core.runtime import MPCRuntime
from repro.graph.graph import Graph
from repro.primitives.contraction import contract_graph, resolve_pointers


@dataclass
class MPCConnectivityResult:
    """Baseline component labels and cost."""

    labels: np.ndarray
    n_components: int
    iterations: int
    report: RunReport
    config: AMPCConfig


def label_propagation(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
    max_iterations: int | None = None,
) -> MPCConnectivityResult:
    """Min-label propagation: Θ(D) MPC rounds (one per iteration)."""
    n = graph.n
    if config is None:
        config = AMPCConfig.for_input(max(n + graph.m, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    if max_iterations is None:
        max_iterations = 2 * n + 8
    labels = np.arange(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    indices = graph.indices
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("label propagation failed to converge")
        new_labels = labels.copy()
        if src.size:
            np.minimum.at(new_labels, src, labels[indices])
        runtime.charge(f"propagate:{iterations}", rounds=1,
                       reads=2 * graph.m, writes=n, kind="mpc")
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return MPCConnectivityResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        iterations=iterations,
        report=runtime.report,
        config=config,
    )


def hooking_connectivity(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
    max_iterations: int | None = None,
) -> MPCConnectivityResult:
    """Hooking + pointer-jumping connectivity: Θ(log n) MPC iterations.

    Each iteration hooks every non-isolated vertex to the minimum id in
    its closed neighborhood, flattens the pointer forest with O(log n)
    jumping rounds (charged ⌈log₂ chain⌉ + 1), and contracts. The vertex
    count at least halves per iteration on regular structures, giving the
    Θ(log n) total of Figure 1's "Minimum spanning tree / O(log n)" row
    applied to connectivity.
    """
    n = graph.n
    if config is None:
        config = AMPCConfig.for_input(max(n + graph.m, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    if max_iterations is None:
        max_iterations = 4 * int(math.ceil(math.log2(max(n, 4)))) + 8
    mapping = np.arange(n, dtype=np.int64)
    current = graph
    iterations = 0
    while current.m > 0:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("hooking connectivity failed to converge")
        nc = current.n
        degs = current.degrees
        src = np.repeat(np.arange(nc, dtype=np.int64), degs)
        leader = np.arange(nc, dtype=np.int64)
        if src.size:
            np.minimum.at(leader, src, current.indices)
        # Hook (1 round) + pointer jumping to flatten chains (log rounds
        # in MPC — this is where MPC pays and AMPC does not).
        root = resolve_pointers(leader, runtime=None)
        max_chain = _max_chain_length(leader, root)
        jump_rounds = max(1, int(math.ceil(math.log2(max(max_chain, 2)))))
        runtime.charge(f"hook:{iterations}", rounds=1,
                       reads=2 * current.m, writes=nc, kind="mpc")
        runtime.charge(f"jump:{iterations}", rounds=jump_rounds,
                       reads=jump_rounds * nc, writes=jump_rounds * nc,
                       kind="mpc")
        contracted, new_of, _rep = contract_graph(current, root, runtime=None)
        runtime.charge(f"contract:{iterations}", rounds=1,
                       reads=2 * current.m, writes=2 * contracted.m,
                       kind="mpc")
        mapping = new_of[root[mapping]]
        current = contracted
    labels = mapping
    return MPCConnectivityResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        iterations=iterations,
        report=runtime.report,
        config=config,
    )


def _max_chain_length(leader: np.ndarray, root: np.ndarray) -> int:
    """Longest pointer chain (for the jumping-round charge)."""
    n = leader.size
    depth = np.zeros(n, dtype=np.int64)
    ptr = leader.copy()
    hops = np.where(ptr != np.arange(n), 1, 0).astype(np.int64)
    while True:
        nxt = ptr[ptr]
        if np.array_equal(nxt, ptr):
            break
        hops = hops + np.where(ptr != nxt, hops[ptr], 0)
        ptr = nxt
    depth = hops
    return int(depth.max()) if n else 0
