"""Luby's maximal independent set: the Θ(log n)-round MPC baseline.

Figure 1 compares the AMPC O(1/ε)-round MIS against MPC algorithms; the
best known MPC bound is Õ(√log n) [Ghaffari–Uitto 23], whose sparsification
machinery is far outside this paper's scope, so the harness runs the
classic implementable baseline — Luby's algorithm, Θ(log n) iterations
w.h.p., each iteration two MPC rounds (exchange random draws with
neighbors; announce selections). The benchmark's claim is the *shape*:
AMPC flat in n, MPC growing with n.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import AMPCConfig
from repro.core.cost import RunReport
from repro.core.runtime import MPCRuntime
from repro.graph.graph import Graph

ROUNDS_PER_ITERATION = 2


@dataclass
class LubyMISResult:
    """Baseline MIS and cost."""

    in_mis: np.ndarray
    iterations: int
    report: RunReport
    config: AMPCConfig

    @property
    def vertices(self) -> np.ndarray:
        return np.flatnonzero(self.in_mis).astype(np.int64)


def luby_mis(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
    max_iterations: int | None = None,
) -> LubyMISResult:
    """Luby's algorithm, vectorized, with per-iteration MPC round charges.

    Each iteration: every alive vertex draws a uniform priority; a vertex
    whose priority beats all alive neighbors joins the MIS; it and its
    neighbors leave the graph.
    """
    n = graph.n
    if config is None:
        config = AMPCConfig.for_input(max(n + graph.m, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    rng = config.rng(salt=0x10B)
    if max_iterations is None:
        max_iterations = 16 * int(np.ceil(np.log2(max(n, 4)))) + 16

    in_mis = np.zeros(n, dtype=bool)
    alive = np.ones(n, dtype=bool)
    indptr, indices = graph.indptr, graph.indices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    iterations = 0

    while alive.any():
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("Luby's algorithm failed to converge")
        draw = rng.random(n)
        draw[~alive] = np.inf
        # Minimum draw among alive neighbors of each vertex.
        edge_alive = alive[src] & alive[indices]
        nbr_min = np.full(n, np.inf)
        if edge_alive.any():
            np.minimum.at(nbr_min, src[edge_alive], draw[indices[edge_alive]])
        winners = alive & (draw < nbr_min)
        in_mis[winners] = True
        # Winners and their neighbors leave.
        remove = winners.copy()
        if edge_alive.any():
            touched = indices[edge_alive][winners[src[edge_alive]]]
            remove[touched] = True
        alive &= ~remove
        n_alive = int(alive.sum())
        runtime.charge(
            f"luby:{iterations}", rounds=ROUNDS_PER_ITERATION,
            reads=int(edge_alive.sum()), writes=n_alive + int(winners.sum()),
            kind="mpc",
        )

    return LubyMISResult(
        in_mis=in_mis,
        iterations=iterations,
        report=runtime.report,
        config=config,
    )
