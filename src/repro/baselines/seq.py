"""Sequential reference implementations — the correctness anchors.

Every distributed algorithm in the library is tested against one of these
single-threaded classics (and, in the test suite, against networkx where
it offers the same primitive).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph, WeightedGraph


def components(graph: Graph) -> np.ndarray:
    """Union-find component labels (min vertex id per component)."""
    from repro.graph.validation import components_reference

    return components_reference(graph)


def lfmis(graph: Graph, pi: np.ndarray) -> np.ndarray:
    """Greedy lexicographically-first MIS for permutation pi."""
    from repro.algorithms.mis import sequential_lfmis

    return sequential_lfmis(graph, pi)


def msf_edge_ids(graph: WeightedGraph) -> np.ndarray:
    """Kruskal MSF as sorted canonical edge ids."""
    from repro.algorithms.msf import sequential_msf_ids

    return sequential_msf_ids(graph)


def list_ranks(succ: np.ndarray, head: int | None = None) -> np.ndarray:
    """O(n) list ranking."""
    from repro.algorithms.list_ranking import sequential_list_ranks

    return sequential_list_ranks(succ, head)


def count_cycles(graph: Graph) -> int:
    """Number of cycles in a union of simple cycles."""
    from repro.graph.io import orient_cycles

    succ, _ = orient_cycles(graph)
    seen = np.zeros(graph.n, dtype=bool)
    cycles = 0
    for v in range(graph.n):
        if seen[v]:
            continue
        cycles += 1
        cur = v
        while not seen[cur]:
            seen[cur] = True
            cur = int(succ[cur])
    return cycles


def bridges_and_articulation(
    graph: Graph,
) -> tuple[np.ndarray, np.ndarray]:
    """Hopcroft–Tarjan bridges and articulation points (iterative DFS).

    The classic O(n + m) lowlink algorithm (paper §9 cites it as the
    sequential solution the parallel pipeline replaces).
    """
    n = graph.n
    disc = np.full(n, -1, dtype=np.int64)
    low = np.full(n, -1, dtype=np.int64)
    parent = np.full(n, -1, dtype=np.int64)
    bridges: list[tuple[int, int]] = []
    articulation = np.zeros(n, dtype=bool)
    timer = 0

    for start in range(n):
        if disc[start] != -1:
            continue
        root_children = 0
        # Frame: (vertex, iterator index into neighbors).
        stack: list[list[int]] = [[start, 0]]
        disc[start] = low[start] = timer
        timer += 1
        while stack:
            frame = stack[-1]
            v, i = frame
            nbrs = graph.neighbors(v)
            if i < nbrs.size:
                frame[1] += 1
                u = int(nbrs[i])
                if disc[u] == -1:
                    parent[u] = v
                    if v == start:
                        root_children += 1
                    disc[u] = low[u] = timer
                    timer += 1
                    stack.append([u, 0])
                elif u != parent[v]:
                    low[v] = min(low[v], disc[u])
            else:
                stack.pop()
                p = int(parent[v])
                if p != -1:
                    low[p] = min(low[p], low[v])
                    if low[v] > disc[p]:
                        bridges.append((min(v, p), max(v, p)))
                    if p != start and low[v] >= disc[p]:
                        articulation[p] = True
        if root_children >= 2:
            articulation[start] = True

    bridge_arr = np.array(sorted(bridges), dtype=np.int64).reshape(-1, 2)
    return bridge_arr, np.flatnonzero(articulation).astype(np.int64)


def two_edge_components(graph: Graph) -> np.ndarray:
    """2-edge-connected component labels: components after bridge removal."""
    bridge_arr, _ = bridges_and_articulation(graph)
    return components(graph.subgraph_without_edges(bridge_arr))
