"""The Andoni et al. MPC connectivity baseline — Figure 1's actual
comparator: O(log D · log log_{m/n} n) rounds.

This is the same phase structure as :mod:`repro.algorithms.connectivity`
(degree increase to budget d, leader contraction, d → d^1.4), with the
one difference the whole paper is about: **without adaptive reads**,
increasing degrees to d takes O(log D') rounds of *graph squaring* —
each round every under-budget vertex learns its neighbors' neighbors
(one message exchange), doubling its reach — instead of AMPC's single
adaptive-BFS round. Comparing this baseline's ledger with the AMPC
algorithm's isolates exactly the adaptivity advantage.

Squaring is capped per vertex at d new neighbors per round (the space
discipline of [2]; without a cap the squared graph can be Θ(n²)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import AMPCConfig
from repro.core.cost import RunReport
from repro.core.runtime import MPCRuntime
from repro.graph.graph import Graph
from repro.primitives.contraction import contract_graph, resolve_pointers
from repro.primitives.sampling import leader_probability

from .label_propagation import _max_chain_length

ROUNDS_PER_SQUARING = 2  # request neighbor lists; receive and merge


@dataclass
class AndoniMPCResult:
    """Baseline labels and cost.

    Attributes:
        labels: component label per vertex.
        n_components: number of components.
        phases: outer contraction phases (the log log n factor).
        squarings_per_phase: inner squaring rounds used by each phase
            (the log D factor AMPC removes).
        report: cost ledger.
        config: deployment used.
    """

    labels: np.ndarray
    n_components: int
    phases: int
    squarings_per_phase: list[int] = field(default_factory=list)
    report: RunReport | None = None
    config: AMPCConfig | None = None


def andoni_mpc_connectivity(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
    max_phases: int | None = None,
) -> AndoniMPCResult:
    """Connectivity via MPC graph exponentiation (Andoni et al. [2])."""
    n = graph.n
    if config is None:
        config = AMPCConfig.for_input(max(n + graph.m, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    if n == 0:
        return AndoniMPCResult(
            labels=np.zeros(0, np.int64), n_components=0, phases=0,
            report=runtime.report, config=config,
        )
    if max_phases is None:
        max_phases = 4 * int(math.ceil(math.log2(math.log2(max(n, 4)) + 1) + 1)) \
            + 4 * int(math.ceil(1.0 / config.epsilon)) + 8

    mapping = np.arange(n, dtype=np.int64)
    current = graph
    rng = config.rng(salt=0xA2D)
    d = max(2.0, math.sqrt(config.total_space / max(n, 1)),
            math.log2(max(n, 4)))
    d_cap = max(
        float(n) ** (config.epsilon / 3.0),
        math.sqrt(config.read_budget / 4.0),
        d,
    )
    phases = 0
    squarings_per_phase: list[int] = []

    while current.m > 0:
        phases += 1
        if phases > max_phases:
            raise RuntimeError(
                f"Andoni MPC did not converge in {max_phases} phases"
            )
        if current.n + current.m <= config.space:
            runtime.charge("local-solve", rounds=1,
                           reads=current.n + 2 * current.m, kind="mpc")
            from repro.graph.validation import components_reference

            roots = components_reference(current)
            mapping = roots[mapping]
            break

        augmented, squarings = _square_until_degree(
            current, int(round(d)), runtime, tag=f"square:{phases}"
        )
        squarings_per_phase.append(squarings)

        p = leader_probability(current.n, d)
        is_leader = rng.random(current.n) < p
        leader = _choose_leaders(augmented, is_leader, int(round(d)))
        root = resolve_pointers(leader, runtime=None)
        max_chain = _max_chain_length(leader, root)
        jump_rounds = max(1, int(math.ceil(math.log2(max(max_chain, 2)))))
        runtime.charge(f"jump:{phases}", rounds=jump_rounds,
                       reads=jump_rounds * current.n,
                       writes=jump_rounds * current.n, kind="mpc")
        contracted, new_of, _rep = contract_graph(augmented, root, runtime=None)
        runtime.charge(f"contract:{phases}", rounds=1,
                       reads=2 * augmented.m, writes=2 * contracted.m,
                       kind="mpc")
        mapping = new_of[root[mapping]]
        current = contracted
        d = min(d**1.4, d_cap)

    labels = mapping
    return AndoniMPCResult(
        labels=labels,
        n_components=int(np.unique(labels).size),
        phases=phases,
        squarings_per_phase=squarings_per_phase,
        report=runtime.report,
        config=config,
    )


def _square_until_degree(
    graph: Graph, d: int, runtime: MPCRuntime, *, tag: str
) -> tuple[Graph, int]:
    """Square the graph until every vertex has degree ≥ d or its whole
    component — Θ(log D) squaring rounds, each charged as message rounds.

    Each squaring: every under-budget vertex u merges in up to d of its
    neighbors' neighbors (the per-vertex space cap of [2]).
    """
    current = graph
    squarings = 0
    max_squarings = 2 * int(math.ceil(math.log2(max(graph.n, 2)))) + 2
    while True:
        degs = current.degrees
        # Vertices satisfied: degree >= d, or their component is smaller
        # than d (detected conservatively: degree unchanged by squaring).
        need = np.flatnonzero((degs < d) & (degs > 0))
        if need.size == 0:
            break
        squarings += 1
        if squarings > max_squarings:
            break
        new_edges: list[tuple[int, int]] = []
        reads = 0
        for u in need.tolist():
            nbrs = current.neighbors(u)
            added = 0
            seen = set(nbrs.tolist())
            seen.add(u)
            for v in nbrs.tolist():
                if added >= d:
                    break
                for w in current.neighbors(v).tolist():
                    reads += 1
                    if w not in seen:
                        seen.add(w)
                        new_edges.append((u, w))
                        added += 1
                        if added >= d:
                            break
        runtime.charge(f"{tag}:{squarings}", rounds=ROUNDS_PER_SQUARING,
                       reads=reads, writes=len(new_edges), kind="mpc")
        if not new_edges:
            break
        combined = np.concatenate(
            [current.edges(), np.array(new_edges, np.int64)]
        )
        current = Graph.from_edges(current.n, combined)
    return current, squarings


def _choose_leaders(graph: Graph, is_leader: np.ndarray, d: int) -> np.ndarray:
    """Same contraction rule as the AMPC side (Algorithm 7 step 2c)."""
    n = graph.n
    leader = np.arange(n, dtype=np.int64)
    for v in range(n):
        if is_leader[v]:
            continue
        nbrs = graph.neighbors(v)
        if nbrs.size == 0:
            continue
        nbr_leaders = nbrs[is_leader[nbrs]]
        if nbr_leaders.size:
            leader[v] = int(nbr_leaders[0])
        elif nbrs.size < d:
            leader[v] = int(min(int(nbrs[0]), v))
    return leader
