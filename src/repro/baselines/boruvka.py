"""Borůvka's MSF: the Θ(log n)-round MPC baseline (Figure 1, MST row).

Each Borůvka step: every component picks its minimum-weight incident edge
(an MSF edge by the cut rule), components hook along the chosen edges, and
the graph contracts — at least halving the component count, so Θ(log n)
iterations. Each iteration is charged as a constant number of MPC rounds
plus the pointer-jumping rounds needed to flatten hooking chains (the cost
AMPC's adaptive walks remove).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import AMPCConfig
from repro.core.cost import RunReport
from repro.core.runtime import MPCRuntime
from repro.graph.graph import WeightedGraph
from repro.primitives.contraction import contract_weighted, resolve_pointers

from .label_propagation import _max_chain_length


@dataclass
class BoruvkaResult:
    """Baseline MSF and cost."""

    edge_ids: np.ndarray
    total_weight: float
    iterations: int
    report: RunReport
    config: AMPCConfig


def boruvka_msf(
    graph: WeightedGraph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
    max_iterations: int | None = None,
) -> BoruvkaResult:
    """Borůvka's algorithm with per-iteration MPC round charges."""
    n = graph.n
    if config is None:
        config = AMPCConfig.for_input(max(n + graph.m, 1), epsilon=epsilon, seed=seed)
    if not graph.weights_distinct():
        raise ValueError("MSF requires distinct edge weights")
    runtime = MPCRuntime(config)
    if max_iterations is None:
        max_iterations = 4 * int(math.ceil(math.log2(max(n, 4)))) + 8

    current = graph
    orig_eid = np.arange(graph.m, dtype=np.int64)
    committed: set[int] = set()
    iterations = 0

    while current.m > 0:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("Boruvka failed to converge")
        nc = current.n
        # Minimum incident edge per vertex (one exchange round).
        src = np.repeat(np.arange(nc, dtype=np.int64), current.degrees)
        order = np.lexsort((current.weights, src))
        first = np.ones(src.size, dtype=bool)
        first[1:] = src[order][1:] != src[order][:-1]
        min_pos = order[first]
        pick_src = src[min_pos]
        pick_dst = current.indices[min_pos]
        pick_eid = current.edge_ids[min_pos]
        for e in np.unique(pick_eid).tolist():
            committed.add(int(orig_eid[e]))
        # Hook each vertex to the other endpoint of its chosen edge. With
        # distinct weights the pick digraph's only cycles are mutual picks
        # (both endpoints of a component-minimum edge); break those by
        # letting the smaller id become the root.
        leader = np.arange(nc, dtype=np.int64)
        leader[pick_src] = pick_dst
        ids = np.arange(nc, dtype=np.int64)
        mutual = (leader[leader] == ids) & (leader != ids)
        brk = mutual & (ids < leader)
        leader[brk] = ids[brk]
        root = resolve_pointers(leader, runtime=None)
        max_chain = _max_chain_length(leader, root)
        jump_rounds = max(1, int(math.ceil(math.log2(max(max_chain, 2)))))
        runtime.charge(f"pick-min:{iterations}", rounds=1,
                       reads=2 * current.m, writes=nc, kind="mpc")
        runtime.charge(f"jump:{iterations}", rounds=jump_rounds,
                       reads=jump_rounds * nc, writes=jump_rounds * nc,
                       kind="mpc")
        contracted, _new_of, _rep, kept = contract_weighted(
            current, root, runtime=None
        )
        runtime.charge(f"contract:{iterations}", rounds=1,
                       reads=2 * current.m, writes=2 * contracted.m,
                       kind="mpc")
        orig_eid = orig_eid[kept]
        current = contracted

    edge_ids = np.array(sorted(committed), dtype=np.int64)
    return BoruvkaResult(
        edge_ids=edge_ids,
        total_weight=graph.total_weight(edge_ids),
        iterations=iterations,
        report=runtime.report,
        config=config,
    )
