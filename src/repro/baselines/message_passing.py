"""Fully-simulated message-level MPC list ranking.

The other baselines execute vectorized and *charge* their MPC round costs;
this module runs Wyllie's pointer jumping through the real
:class:`~repro.core.runtime.MPCRuntime` message machinery — every pointer
dereference is an actual request/response message pair between the owning
machines, and the runtime's :class:`~repro.core.errors.AdaptivityError`
guard proves no adaptive read sneaks in. It exists to validate the charged
baselines' round accounting (tests assert both give identical ranks and
round counts) and to document what an honest MPC execution looks like;
use :func:`repro.baselines.pointer_doubling.mpc_list_ranking` for speed.

Machines are stateless between rounds in the simulator, so each machine
re-sends its own elements' state to itself every round — the standard
self-message formalization of persistent local state in MPC.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import AMPCConfig
from repro.core.machine import MPCMachineContext
from repro.core.partition import machine_of
from repro.core.runtime import MPCRuntime

from .pointer_doubling import MPCListRankingResult


def mpc_list_ranking_simulated(
    succ: np.ndarray,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
) -> MPCListRankingResult:
    """Wyllie's algorithm as real message rounds. O(n) elements, so keep n
    small (tests use a few hundred); Θ(log n) iterations × 2 rounds."""
    n = int(succ.size)
    if config is None:
        config = AMPCConfig.for_input(max(n, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    if n == 0:
        return MPCListRankingResult(
            ranks=np.zeros(0, np.int64), iterations=0,
            report=runtime.report, config=config,
        )
    p = config.n_machines
    owner = {v: machine_of(v, p, config.seed) for v in range(n)}
    tail = int(np.flatnonzero(succ < 0)[0])

    # Initial state: element v -> (ptr, dist); tail points at itself.
    state: dict[int, tuple[int, int]] = {
        v: (int(succ[v]) if succ[v] >= 0 else v,
            1 if succ[v] >= 0 else 0)
        for v in range(n)
    }

    iterations = int(math.ceil(math.log2(max(n, 2))))
    for i in range(iterations):
        # Round A: each owner asks the owner of ptr(v) for ptr(v)'s state.
        requests = [
            (owner[ptr], ("req", v, ptr))
            for v, (ptr, _dist) in state.items()
        ]
        holdings = [
            (owner[v], ("state", v, ptr, dist))
            for v, (ptr, dist) in state.items()
        ]

        def respond(ctx: MPCMachineContext):
            inbox = ctx.inbox()
            local = {
                msg[1]: (msg[2], msg[3]) for msg in inbox if msg[0] == "state"
            }
            for msg in inbox:
                if msg[0] == "req":
                    _, v, ptr = msg
                    ptr2, dist2 = local[ptr]
                    ctx.send(owner[v], ("ans", v, ptr2, dist2))

        runtime.message_round(
            respond, messages=requests + holdings, tag=f"mpc-req:{i}"
        )

        # Round B: owners fold the answers into their elements' states.
        answers: dict[int, tuple[int, int]] = {}

        def collect(ctx: MPCMachineContext):
            for msg in ctx.inbox():
                if msg[0] == "ans":
                    answers[msg[1]] = (msg[2], msg[3])

        runtime.message_round(collect, tag=f"mpc-fold:{i}")
        state = {
            v: (answers[v][0], dist + answers[v][1])
            for v, (ptr, dist) in state.items()
        }

    ranks = np.empty(n, dtype=np.int64)
    for v, (ptr, dist) in state.items():
        if ptr != tail:
            raise ValueError("input was not a single linked list")
        ranks[v] = (n - 1) - dist
    return MPCListRankingResult(
        ranks=ranks,
        iterations=iterations,
        report=runtime.report,
        config=config,
    )
