"""MPC baselines (Figure 1's right column) and sequential references."""

from . import seq
from .andoni_mpc import AndoniMPCResult, andoni_mpc_connectivity
from .boruvka import BoruvkaResult, boruvka_msf
from .label_propagation import (
    MPCConnectivityResult,
    hooking_connectivity,
    label_propagation,
)
from .luby_mis import LubyMISResult, luby_mis
from .message_passing import mpc_list_ranking_simulated
from .pointer_doubling import (
    MPCListRankingResult,
    MPCTwoCycleResult,
    mpc_list_ranking,
    mpc_two_cycle,
)

__all__ = [
    "seq",
    "andoni_mpc_connectivity",
    "AndoniMPCResult",
    "boruvka_msf",
    "BoruvkaResult",
    "label_propagation",
    "hooking_connectivity",
    "MPCConnectivityResult",
    "luby_mis",
    "LubyMISResult",
    "mpc_two_cycle",
    "MPCTwoCycleResult",
    "mpc_list_ranking",
    "MPCListRankingResult",
    "mpc_list_ranking_simulated",
]
