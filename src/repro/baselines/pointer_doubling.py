"""MPC pointer-doubling baselines: 2-Cycle and list ranking in Θ(log n).

These are the classic non-adaptive algorithms the AMPC results are
measured against (paper Figure 1, rows "2-Cycle" and the list-ranking
machinery behind forest connectivity). In MPC, following a pointer chain
needs one round per hop, so algorithms double pointers instead:
``succ ← succ∘succ`` halves the remaining distance each iteration,
reaching any fixed point after ⌈log₂ n⌉ iterations — the Ω(log n)
behaviour the 2-Cycle conjecture says is unavoidable in MPC.

Execution is vectorized numpy with every iteration charged to the ledger
as ``ROUNDS_PER_JUMP`` MPC rounds (request to the successor's machine,
response back); :mod:`repro.baselines.message_passing` holds a
fully-simulated message-level variant used to validate this accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import AMPCConfig
from repro.core.cost import RunReport
from repro.core.runtime import MPCRuntime
from repro.graph.graph import Graph
from repro.graph.io import orient_cycles

# One doubling step: machine(v) requests succ[succ[v]] from machine(succ[v])
# and receives the answer next round.
ROUNDS_PER_JUMP = 2


@dataclass
class MPCTwoCycleResult:
    """Baseline answer and cost for the 2-Cycle problem."""

    n_cycles: int
    is_two_cycles: bool
    iterations: int
    report: RunReport
    config: AMPCConfig


def mpc_two_cycle(
    graph: Graph,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
) -> MPCTwoCycleResult:
    """2-Cycle via min-label pointer doubling: Θ(log n) MPC rounds.

    Every vertex tracks the minimum vertex id among the 2^k cycle
    positions ahead of it; after ⌈log₂ n⌉ doublings that is the cycle
    minimum, and counting distinct minima answers the problem.
    """
    if config is None:
        config = AMPCConfig.for_input(max(graph.n, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    succ, _ = orient_cycles(graph)
    runtime.charge("orient-cycles", rounds=1, reads=graph.n,
                   writes=graph.n, kind="mpc")
    n = graph.n
    best = np.arange(n, dtype=np.int64)
    ptr = succ.copy()
    iterations = int(math.ceil(math.log2(max(n, 2))))
    for i in range(iterations):
        best = np.minimum(best, best[ptr])
        ptr = ptr[ptr]
        runtime.charge(f"jump:{i}", rounds=ROUNDS_PER_JUMP,
                       reads=2 * n, writes=2 * n, kind="mpc")
    n_cycles = int(np.unique(best).size)
    return MPCTwoCycleResult(
        n_cycles=n_cycles,
        is_two_cycles=n_cycles == 2,
        iterations=iterations,
        report=runtime.report,
        config=config,
    )


@dataclass
class MPCListRankingResult:
    """Baseline ranks and cost for list ranking."""

    ranks: np.ndarray
    iterations: int
    report: RunReport
    config: AMPCConfig


def mpc_list_ranking(
    succ: np.ndarray,
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    config: AMPCConfig | None = None,
) -> MPCListRankingResult:
    """Wyllie's list ranking: Θ(log n) MPC rounds.

    rank(v) accumulates the distance to v's current pointer target while
    pointers double; once every pointer reaches the tail, rank(v) is the
    distance *to the tail*, which converts to distance from the head as
    (list length - 1) - rank.
    """
    n = int(succ.size)
    if config is None:
        config = AMPCConfig.for_input(max(n, 1), epsilon=epsilon, seed=seed)
    runtime = MPCRuntime(config)
    if n == 0:
        return MPCListRankingResult(
            ranks=np.zeros(0, np.int64), iterations=0,
            report=runtime.report, config=config,
        )
    # Tail sentinel: point the tail at itself with distance 0.
    ptr = succ.copy()
    dist = np.where(succ >= 0, 1, 0).astype(np.int64)
    ptr[ptr < 0] = np.flatnonzero(succ < 0)[0] if (succ < 0).any() else 0
    tail = int(np.flatnonzero(succ < 0)[0])
    ptr[tail] = tail
    iterations = int(math.ceil(math.log2(max(n, 2))))
    for i in range(iterations):
        dist = dist + dist[ptr]
        ptr = ptr[ptr]
        runtime.charge(f"jump:{i}", rounds=ROUNDS_PER_JUMP,
                       reads=2 * n, writes=2 * n, kind="mpc")
    if not np.all(ptr == tail):
        raise ValueError("input was not a single linked list")
    ranks = (n - 1) - dist
    return MPCListRankingResult(
        ranks=ranks,
        iterations=iterations,
        report=runtime.report,
        config=config,
    )
