"""Persistent fork-based worker pool with closure-capable task shipping.

One pipe per worker, one in-flight task per worker, tasks dispatched by
name from a registry in :mod:`repro.parallel.backend` (so only payloads
cross the pipe, never code objects for the framework itself). Round
*worker callables*, however, are frequently local closures — MIS's
truncated-query worker, connectivity's CSR-capturing batch worker — which
plain pickle refuses; :func:`encode_callable` falls back to a
marshal-of-code encoding that reconstructs the function in the child
against its defining module's globals, with pickled defaults and closure
cell values. When even that fails, :class:`CallableShipError` tells the
runtime to fall back to the serial path for that round.
"""

from __future__ import annotations

import atexit
import importlib
import marshal
import multiprocessing
import pickle
import sys
import traceback
import types
from typing import Any, Callable

__all__ = [
    "CallableShipError",
    "WorkerCrashError",
    "encode_callable",
    "decode_callable",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
]


class CallableShipError(RuntimeError):
    """A round worker (or its payload) cannot be shipped to pool workers;
    the runtime catches this and falls back to the serial path."""


class WorkerCrashError(RuntimeError):
    """A pool worker process died before returning its task result."""


def encode_callable(fn: Callable[..., Any]) -> tuple[str, Any]:
    """Encode a callable for reconstruction in a pool worker.

    Module-level functions go through pickle; local closures/lambdas use
    the marshal fallback. Raises :class:`CallableShipError` when neither
    works (e.g. a closure over an unpicklable object).
    """
    try:
        return ("pickle", pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        pass
    try:
        code = fn.__code__
        cells = tuple(cell.cell_contents for cell in (fn.__closure__ or ()))
        return (
            "marshal",
            (
                marshal.dumps(code),
                fn.__module__,
                fn.__name__,
                pickle.dumps(fn.__defaults__, protocol=pickle.HIGHEST_PROTOCOL),
                pickle.dumps(cells, protocol=pickle.HIGHEST_PROTOCOL),
            ),
        )
    except Exception as exc:
        raise CallableShipError(
            f"cannot ship worker callable {fn!r} to the process backend: {exc}"
        ) from exc


def decode_callable(encoded: tuple[str, Any]) -> Callable[..., Any]:
    """Inverse of :func:`encode_callable` (runs in the pool worker)."""
    kind, payload = encoded
    if kind == "pickle":
        return pickle.loads(payload)
    code_bytes, module_name, name, defaults_bytes, cells_bytes = payload
    code = marshal.loads(code_bytes)
    module = sys.modules.get(module_name)
    if module is None:
        module = importlib.import_module(module_name)
    cell_values = pickle.loads(cells_bytes)
    closure = tuple(types.CellType(v) for v in cell_values) or None
    return types.FunctionType(
        code, module.__dict__, name, pickle.loads(defaults_bytes), closure
    )


def _ship_exception(exc: BaseException) -> tuple:
    etype = type(exc)
    try:
        args = pickle.dumps(exc.args, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        args = pickle.dumps((str(exc),))
    return ("err", etype.__module__, etype.__qualname__, args,
            traceback.format_exc())


def _rebuild_exception(info: tuple) -> BaseException:
    _, module_name, qualname, args_bytes, tb_text = info
    try:
        args = pickle.loads(args_bytes)
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        try:
            exc = obj(*args)
        except Exception:
            # Exception classes whose __init__ reshapes args (e.g. a
            # formatted message): bypass __init__, keep the args.
            exc = obj.__new__(obj)
            exc.args = args
    except Exception:
        exc = WorkerCrashError(
            f"worker task failed with unreconstructable "
            f"{module_name}.{qualname}"
        )
    try:
        exc.add_note("pool worker traceback:\n" + tb_text)
    except Exception:
        pass
    return exc


def _worker_main(conn: Any) -> None:
    from .shm import disable_worker_shm_tracking

    disable_worker_shm_tracking()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        task_name, payload_blob = message
        try:
            from . import backend as _backend

            task = _backend.TASKS[task_name]
            out: tuple = ("ok", task(pickle.loads(payload_blob)))
        except Exception as exc:
            out = _ship_exception(exc)
        try:
            conn.send(out)
        except Exception as exc:
            # An unpicklable task *result* must not break the pipe
            # protocol; ship it as a CallableShipError so the parent
            # falls back to the serial path (workers mutate no parent
            # state, so re-running the round serially is safe).
            try:
                conn.send(
                    _ship_exception(
                        CallableShipError(
                            f"task result could not be shipped back: {exc}"
                        )
                    )
                )
            except Exception:
                break
    try:
        conn.close()
    except Exception:
        pass


class WorkerPool:
    """Fixed set of forked workers, one duplex pipe each.

    Fork (not spawn): workers inherit the loaded module graph, so a task
    only ships its payload. The pool is persistent — created once, reused
    by every parallel round — which is what makes per-round dispatch
    cheap enough to shard small rounds.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        ctx = multiprocessing.get_context("fork")
        self.n_workers = n_workers
        self.broken = False
        self._conns = []
        self._procs = []
        for _ in range(n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def run_tasks(self, task_name: str, payload_blobs: list[bytes]) -> list[Any]:
        """Run pre-pickled payloads across the workers; results in order.

        Shard i goes to worker ``i % n_workers``; dispatch proceeds in
        waves of one task per worker. If any task raised, the exception
        of the *lowest shard index* is re-raised (shards are ordered by
        ascending machine range, so this matches the serial path's
        first-machine-wins error ordering).
        """
        results: list[Any] = [None] * len(payload_blobs)
        errors: list[tuple[int, tuple]] = []
        by_worker: list[list[int]] = [[] for _ in range(self.n_workers)]
        for index in range(len(payload_blobs)):
            by_worker[index % self.n_workers].append(index)
        wave = 0
        while True:
            active: list[tuple[int, int]] = []
            for worker_idx, indices in enumerate(by_worker):
                if wave < len(indices):
                    index = indices[wave]
                    try:
                        self._conns[worker_idx].send(
                            (task_name, payload_blobs[index])
                        )
                    except (OSError, BrokenPipeError) as exc:
                        self.broken = True
                        raise WorkerCrashError(
                            f"pool worker {worker_idx} is gone"
                        ) from exc
                    active.append((worker_idx, index))
            if not active:
                break
            for worker_idx, index in active:
                try:
                    reply = self._conns[worker_idx].recv()
                except (EOFError, OSError) as exc:
                    self.broken = True
                    raise WorkerCrashError(
                        f"pool worker {worker_idx} died mid-task"
                    ) from exc
                if reply[0] == "ok":
                    results[index] = reply[1]
                else:
                    errors.append((index, reply))
            wave += 1
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise _rebuild_exception(errors[0][1])
        return results

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._conns = []
        self._procs = []
        self.broken = True


_POOL: WorkerPool | None = None


def get_pool(n_workers: int) -> WorkerPool:
    """The shared persistent pool, (re)built on size change or breakage."""
    global _POOL
    if _POOL is not None and (_POOL.broken or _POOL.n_workers != n_workers):
        _POOL.close()
        _POOL = None
    if _POOL is None:
        _POOL = WorkerPool(n_workers)
    return _POOL


def shutdown_pool() -> None:
    """Terminate the shared pool (idempotent; re-created on next use)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(shutdown_pool)
