"""Supervised, fault-tolerant fork-based worker pool.

One pipe per worker, one in-flight task per worker, tasks dispatched by
name from a registry in :mod:`repro.parallel.backend` (so only payloads
cross the pipe, never code objects for the framework itself). Round
*worker callables*, however, are frequently local closures — MIS's
truncated-query worker, connectivity's CSR-capturing batch worker — which
plain pickle refuses; :func:`encode_callable` falls back to a
marshal-of-code encoding that reconstructs the function in the child
against its defining module's globals, with pickled defaults and closure
cell values. When even that fails, :class:`CallableShipError` tells the
runtime to fall back to the serial path for that round.

Supervision
-----------

:meth:`WorkerPool.run_tasks` is a poll-based supervisor loop, not a
blocking wave dispatch. Each dispatch carries a monotone *ticket*;
replies echo it, so a late reply from an abandoned dispatch can never be
credited to a newer task. The supervisor waits on every in-flight
worker's pipe *and* process sentinel at once, so it observes three
distinct failures:

* **crash** — the sentinel fires (or the pipe EOFs) before a reply: the
  worker is respawned and the shard re-queued;
* **hang / dropped reply** — no reply within the
  :class:`RecoveryPolicy` task deadline: the worker is killed (it may be
  wedged), respawned, and the shard re-queued after an exponential
  backoff with deterministic jitter;
* **slow straggler** — optionally, the slowest in-flight shard is
  speculatively re-dispatched to an idle worker (*hedging*) and the
  first reply wins.

Re-executing a shard is provably safe: workers mutate no parent state —
they read a sealed store snapshot and return a journal — so the parent
merges exactly one (the winning) reply per shard and discards the rest,
keeping results and cost ledgers bit-identical to the serial path.
When a shard exhausts its retries (or a worker cannot be respawned) the
supervisor raises :class:`WorkerPoolRecoveryError`; the runtime catches
it and degrades gracefully to the serial path for that round.

Fault injection: ``run_tasks(..., faults=...)`` accepts a duck-typed
plan (see :class:`repro.core.chaos.ProcessFaultPlan`) providing
``directive_for(task_index, attempt)`` — returning ``None``,
``("kill",)``, ``("drop",)`` or ``("delay", seconds)`` — and
``fork_fails(worker_idx, respawn_seq, spawn_attempt)``. Directives ride
along with the dispatch and are honored *in the worker* (a real SIGKILL,
a real dropped reply), so recovery is exercised against genuine process
death, not a simulation of it.
"""

from __future__ import annotations

import atexit
import dataclasses
import importlib
import marshal
import multiprocessing
import multiprocessing.connection as _mpc
import os
import pickle
import signal
import sys
import time
import traceback
import types
from typing import Any, Callable

from repro.core.partition import splitmix64

__all__ = [
    "CallableShipError",
    "WorkerCrashError",
    "WorkerPoolRecoveryError",
    "RecoveryPolicy",
    "PoolRecovery",
    "PoolRunResult",
    "encode_callable",
    "decode_callable",
    "WorkerPool",
    "get_pool",
    "shutdown_pool",
]


class CallableShipError(RuntimeError):
    """A round worker (or its payload) cannot be shipped to pool workers;
    the runtime catches this and falls back to the serial path."""


class WorkerCrashError(RuntimeError):
    """A pool worker process died before returning its task result."""


class WorkerPoolRecoveryError(WorkerCrashError):
    """Supervised recovery gave up: a shard exhausted its retries, the
    round deadline expired, or a worker could not be respawned. Carries
    the :class:`PoolRecovery` tally in ``recovery`` so the runtime can
    still account the failed attempt's retries/respawns after it falls
    back to the serial path."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.recovery: PoolRecovery | None = None


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """How :meth:`WorkerPool.run_tasks` recovers from worker failures.

    ``max_task_retries``
        Re-executions allowed per shard after its first failed attempt
        (crash, hang, or deadline expiry — application-level exceptions
        are deterministic and never retried). Exhaustion raises
        :class:`WorkerPoolRecoveryError` and the runtime degrades to the
        serial path.
    ``task_deadline_s``
        Per-dispatch wall-clock ceiling. A worker that has not replied
        by then is declared hung, killed, and respawned; its shard is
        re-queued. This is what guarantees a hung worker never blocks a
        round past its deadline.
    ``base_backoff_s`` / ``backoff_multiplier`` / ``max_backoff_s`` /
    ``jitter``
        Exponential backoff before the *k*-th retry of a shard:
        ``base * multiplier**(k-1)`` capped at ``max_backoff_s``, scaled
        by a deterministic jitter factor in ``[1-jitter, 1+jitter]``
        derived from :func:`splitmix64` (stable across runs — recovery
        timing never perturbs results, and tests stay reproducible).
    ``round_deadline_s``
        Wall-clock ceiling for the whole ``run_tasks`` call
        (``None`` = unbounded).
    ``hedge`` / ``hedge_after_s`` / ``hedge_ratio``
        Straggler hedging: when enabled and a worker sits idle, the
        slowest in-flight shard is speculatively re-dispatched once its
        elapsed time exceeds ``max(hedge_after_s, hedge_ratio * median
        completed-task duration)``; the first reply wins and the loser
        is discarded (never merged).
    ``max_spawn_attempts``
        Forks attempted per respawn before declaring the pool broken.
    """

    max_task_retries: int = 2
    task_deadline_s: float = 60.0
    base_backoff_s: float = 0.02
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.5
    jitter: float = 0.25
    round_deadline_s: float | None = 300.0
    hedge: bool = False
    hedge_after_s: float = 1.0
    hedge_ratio: float = 4.0
    max_spawn_attempts: int = 3

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.task_deadline_s <= 0:
            raise ValueError("task_deadline_s must be > 0")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ValueError("round_deadline_s must be > 0 (or None)")
        if self.hedge_after_s < 0 or self.hedge_ratio < 1.0:
            raise ValueError("hedge_after_s >= 0 and hedge_ratio >= 1 required")
        if self.max_spawn_attempts < 1:
            raise ValueError("max_spawn_attempts must be >= 1")

    def backoff(self, attempt: int, salt: int = 0) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered
        deterministically by ``salt`` (shard index, dispatch count)."""
        if attempt <= 0:
            return 0.0
        base = self.base_backoff_s * self.backoff_multiplier ** (attempt - 1)
        base = min(base, self.max_backoff_s)
        if self.jitter == 0.0 or base == 0.0:
            return base
        unit = splitmix64((salt << 8) ^ attempt) / float(2**64)
        return base * (1.0 - self.jitter + 2.0 * self.jitter * unit)


DEFAULT_RECOVERY = RecoveryPolicy()


@dataclasses.dataclass
class PoolRecovery:
    """Tally of recovery actions taken during one ``run_tasks`` call."""

    task_retries: int = 0
    worker_respawns: int = 0
    fork_failures: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_lost: int = 0
    recovery_wall_s: float = 0.0

    @property
    def any(self) -> bool:
        return (
            self.task_retries + self.worker_respawns + self.fork_failures
            + self.hedges_launched + self.hedges_won + self.hedges_lost
        ) > 0 or self.recovery_wall_s > 0.0

    def merge_from(self, other: "PoolRecovery") -> None:
        self.task_retries += other.task_retries
        self.worker_respawns += other.worker_respawns
        self.fork_failures += other.fork_failures
        self.hedges_launched += other.hedges_launched
        self.hedges_won += other.hedges_won
        self.hedges_lost += other.hedges_lost
        self.recovery_wall_s += other.recovery_wall_s


@dataclasses.dataclass
class PoolRunResult:
    """Outcome of a supervised ``run_tasks`` call.

    ``worker_of[i]`` is the worker whose reply *won* shard ``i`` — under
    retries/hedging that need not be ``i % n_workers``, and it is what
    replay uses to tag tracer spans with the executing worker.
    """

    results: list[Any]
    worker_of: list[int]
    recovery: PoolRecovery


def encode_callable(fn: Callable[..., Any]) -> tuple[str, Any]:
    """Encode a callable for reconstruction in a pool worker.

    Module-level functions go through pickle; local closures/lambdas use
    the marshal fallback. Raises :class:`CallableShipError` when neither
    works (e.g. a closure over an unpicklable object).
    """
    try:
        return ("pickle", pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        pass
    try:
        code = fn.__code__
        cells = tuple(cell.cell_contents for cell in (fn.__closure__ or ()))
        return (
            "marshal",
            (
                marshal.dumps(code),
                fn.__module__,
                fn.__name__,
                pickle.dumps(fn.__defaults__, protocol=pickle.HIGHEST_PROTOCOL),
                pickle.dumps(cells, protocol=pickle.HIGHEST_PROTOCOL),
            ),
        )
    except Exception as exc:
        raise CallableShipError(
            f"cannot ship worker callable {fn!r} to the process backend: {exc}"
        ) from exc


def decode_callable(encoded: tuple[str, Any]) -> Callable[..., Any]:
    """Inverse of :func:`encode_callable` (runs in the pool worker)."""
    kind, payload = encoded
    if kind == "pickle":
        return pickle.loads(payload)
    code_bytes, module_name, name, defaults_bytes, cells_bytes = payload
    code = marshal.loads(code_bytes)
    module = sys.modules.get(module_name)
    if module is None:
        module = importlib.import_module(module_name)
    cell_values = pickle.loads(cells_bytes)
    closure = tuple(types.CellType(v) for v in cell_values) or None
    return types.FunctionType(
        code, module.__dict__, name, pickle.loads(defaults_bytes), closure
    )


def _ship_exception(exc: BaseException) -> tuple:
    etype = type(exc)
    try:
        args = pickle.dumps(exc.args, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        args = pickle.dumps((str(exc),))
    return ("err", etype.__module__, etype.__qualname__, args,
            traceback.format_exc())


def _rebuild_exception(info: tuple) -> BaseException:
    _, module_name, qualname, args_bytes, tb_text = info
    try:
        args = pickle.loads(args_bytes)
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        try:
            exc = obj(*args)
        except Exception:
            # Exception classes whose __init__ reshapes args (e.g. a
            # formatted message): bypass __init__, keep the args.
            exc = obj.__new__(obj)
            exc.args = args
    except Exception:
        exc = WorkerCrashError(
            f"worker task failed with unreconstructable "
            f"{module_name}.{qualname}"
        )
    try:
        exc.add_note("pool worker traceback:\n" + tb_text)
    except Exception:
        pass
    return exc


def _worker_main(conn: Any) -> None:
    from .shm import disable_worker_shm_tracking

    disable_worker_shm_tracking()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        ticket, task_name, payload_blob, directive = message
        if directive is not None and directive[0] == "kill":
            # Injected fault: die exactly like a genuinely SIGKILLed
            # worker — no cleanup, no reply, sentinel fires in the parent.
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            from . import backend as _backend

            task = _backend.TASKS[task_name]
            out: tuple = ("ok", task(pickle.loads(payload_blob)))
        except Exception as exc:
            out = _ship_exception(exc)
        if directive is not None:
            kind = directive[0]
            if kind == "drop":
                # Injected fault: the work was done but the reply is
                # lost — the parent sees a hang and must deadline it.
                continue
            if kind == "delay":
                time.sleep(directive[1])
        try:
            conn.send((ticket, out))
        except Exception as exc:
            # An unpicklable task *result* must not break the pipe
            # protocol; ship it as a CallableShipError so the parent
            # falls back to the serial path (workers mutate no parent
            # state, so re-running the round serially is safe).
            try:
                conn.send(
                    (
                        ticket,
                        _ship_exception(
                            CallableShipError(
                                f"task result could not be shipped back: {exc}"
                            )
                        ),
                    )
                )
            except Exception:
                break
    try:
        conn.close()
    except Exception:
        pass


class _Inflight:
    """One dispatched-but-unanswered task on one worker."""

    __slots__ = ("ticket", "index", "started", "is_hedge")

    def __init__(self, ticket: int, index: int, started: float,
                 is_hedge: bool) -> None:
        self.ticket = ticket
        self.index = index
        self.started = started
        self.is_hedge = is_hedge


class WorkerPool:
    """Fixed set of forked workers, one duplex pipe each, supervised.

    Fork (not spawn): workers inherit the loaded module graph, so a task
    only ships its payload. The pool is persistent — created once, reused
    by every parallel round — which is what makes per-round dispatch
    cheap enough to shard small rounds. ``policy`` governs recovery; it
    is a plain attribute and may be swapped between rounds.
    """

    def __init__(self, n_workers: int,
                 policy: RecoveryPolicy | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._ctx = multiprocessing.get_context("fork")
        self.n_workers = n_workers
        self.policy = policy if policy is not None else DEFAULT_RECOVERY
        self.broken = False
        self._ticket = 0
        self._respawn_seq = [0] * n_workers
        self._conns: list[Any] = []
        self._procs: list[Any] = []
        for _ in range(n_workers):
            conn, proc = self._spawn()
            self._conns.append(conn)
            self._procs.append(proc)

    def _spawn(self) -> tuple[Any, Any]:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _respawn(self, worker_idx: int,
                 recovery: PoolRecovery | None = None,
                 faults: Any = None) -> None:
        """Kill (if needed) and replace one worker process.

        Any shared-memory segments the dead worker had attached are
        reclaimed by the kernel on process death; the parent-side arena
        still owns (and will unlink) the segments, so a mid-round
        respawn leaks nothing — the fresh worker simply re-attaches by
        name when its re-dispatched shard arrives.
        """
        began = time.monotonic()
        proc = self._procs[worker_idx]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5)
        try:
            self._conns[worker_idx].close()
        except Exception:
            pass
        seq = self._respawn_seq[worker_idx]
        self._respawn_seq[worker_idx] += 1
        last_exc: BaseException | None = None
        for spawn_attempt in range(self.policy.max_spawn_attempts):
            if faults is not None and faults.fork_fails(
                worker_idx, seq, spawn_attempt
            ):
                if recovery is not None:
                    recovery.fork_failures += 1
                last_exc = OSError("injected fork failure")
                continue
            try:
                conn, proc = self._spawn()
            except OSError as exc:
                last_exc = exc
                continue
            self._conns[worker_idx] = conn
            self._procs[worker_idx] = proc
            if recovery is not None:
                recovery.worker_respawns += 1
                recovery.recovery_wall_s += time.monotonic() - began
            return
        self.broken = True
        error = WorkerPoolRecoveryError(
            f"could not respawn pool worker {worker_idx} after "
            f"{self.policy.max_spawn_attempts} attempts"
        )
        error.__cause__ = last_exc
        raise error

    def run_tasks(self, task_name: str, payload_blobs: list[bytes],
                  faults: Any = None) -> PoolRunResult:
        """Run pre-pickled payloads across the workers, supervised.

        Results come back in shard order. Crashed/hung workers are
        respawned and their shard re-executed per :attr:`policy`; if any
        task raised an application-level exception, the exception of the
        *lowest shard index* is re-raised (shards are ordered by
        ascending machine range, so this matches the serial path's
        first-machine-wins error ordering) and no shard with a higher
        index is newly dispatched — the remaining in-flight work is
        drained or discarded. Raises :class:`WorkerPoolRecoveryError`
        when recovery itself gives up.
        """
        n = len(payload_blobs)
        policy = self.policy
        recovery = PoolRecovery()
        results: list[Any] = [None] * n
        worker_of = [-1] * n
        done = [False] * n
        pending = [True] * n
        hedged = [False] * n
        failures = [0] * n
        dispatches = [0] * n
        ready_at = [0.0] * n
        errors: list[tuple[int, tuple]] = []
        min_err = n
        inflight: dict[int, _Inflight] = {}
        durations: list[float] = []
        start = time.monotonic()

        def dispatch(worker_idx: int, index: int, is_hedge: bool) -> None:
            directive = None
            if faults is not None:
                directive = faults.directive_for(index, dispatches[index])
            self._ticket += 1
            message = (self._ticket, task_name, payload_blobs[index],
                       directive)
            try:
                self._conns[worker_idx].send(message)
            except (OSError, BrokenPipeError):
                # The worker died while idle: replace it and re-send.
                self._respawn(worker_idx, recovery, faults)
                try:
                    self._conns[worker_idx].send(message)
                except (OSError, BrokenPipeError) as exc:
                    self.broken = True
                    error = WorkerPoolRecoveryError(
                        f"freshly respawned worker {worker_idx} rejected "
                        f"its dispatch"
                    )
                    error.__cause__ = exc
                    raise error from exc
            dispatches[index] += 1
            inflight[worker_idx] = _Inflight(
                self._ticket, index, time.monotonic(), is_hedge
            )
            if is_hedge:
                hedged[index] = True
                recovery.hedges_launched += 1
            else:
                pending[index] = False

        def finish(worker_idx: int, inf: _Inflight, out: tuple,
                   now: float) -> None:
            nonlocal min_err
            index = inf.index
            if done[index]:
                return  # a hedge twin lost the race: discard, merge nothing
            done[index] = True
            pending[index] = False
            if out[0] == "ok":
                results[index] = out[1]
                worker_of[index] = worker_idx
                durations.append(now - inf.started)
                if hedged[index]:
                    if inf.is_hedge:
                        recovery.hedges_won += 1
                    else:
                        recovery.hedges_lost += 1
            else:
                errors.append((index, out))
                min_err = min(min_err, index)

        def recover(worker_idx: int, reason: str, now: float) -> None:
            """Worker died or its task deadlined: respawn + re-queue."""
            inf = inflight.pop(worker_idx, None)
            self._respawn(worker_idx, recovery, faults)
            if inf is None:
                return
            index = inf.index
            if done[index]:
                return  # stale hedge twin: the shard already completed
            if any(other.index == index for other in inflight.values()):
                return  # a live twin is still racing; let it finish
            failures[index] += 1
            if failures[index] > policy.max_task_retries:
                raise WorkerPoolRecoveryError(
                    f"shard {index} ({reason}) failed {failures[index]} "
                    f"times; retries exhausted"
                )
            recovery.task_retries += 1
            delay = policy.backoff(
                failures[index], salt=(index << 16) ^ dispatches[index]
            )
            ready_at[index] = now + delay
            recovery.recovery_wall_s += delay
            pending[index] = True

        def hedge_candidate(now: float) -> int | None:
            threshold = policy.hedge_after_s
            if durations:
                median = sorted(durations)[len(durations) // 2]
                threshold = max(threshold, policy.hedge_ratio * median)
            best, best_elapsed = None, threshold
            for inf in inflight.values():
                index = inf.index
                if done[index] or hedged[index] or inf.is_hedge:
                    continue
                elapsed = now - inf.started
                if elapsed > best_elapsed:
                    best, best_elapsed = index, elapsed
            return best

        try:
            while True:
                now = time.monotonic()
                if all(done[i] for i in range(min(min_err, n))):
                    break
                if (policy.round_deadline_s is not None
                        and now - start > policy.round_deadline_s):
                    raise WorkerPoolRecoveryError(
                        f"round exceeded its "
                        f"{policy.round_deadline_s:.3f}s deadline"
                    )

                # Hung (or reply-dropped) workers: per-task deadline.
                for worker_idx in list(inflight):
                    if now - inflight[worker_idx].started > policy.task_deadline_s:
                        recover(worker_idx, "deadline expired", now)

                # Fill idle workers: lowest shard index first; never
                # dispatch at/above the lowest known error index.
                for worker_idx in range(self.n_workers):
                    if worker_idx in inflight:
                        continue
                    candidate = None
                    for index in range(min(min_err, n)):
                        if (pending[index] and not done[index]
                                and ready_at[index] <= now):
                            candidate = index
                            break
                    if candidate is not None:
                        dispatch(worker_idx, candidate, is_hedge=False)
                        continue
                    if policy.hedge and min_err == n:
                        target = hedge_candidate(now)
                        if target is not None:
                            dispatch(worker_idx, target, is_hedge=True)

                waitables: dict[Any, int] = {}
                for worker_idx, inf in inflight.items():
                    waitables[self._conns[worker_idx]] = worker_idx
                    waitables[self._procs[worker_idx].sentinel] = worker_idx

                timeout_candidates = [
                    inf.started + policy.task_deadline_s - now
                    for inf in inflight.values()
                ]
                for index in range(min(min_err, n)):
                    if (pending[index] and not done[index]
                            and ready_at[index] > now):
                        timeout_candidates.append(ready_at[index] - now)
                if policy.round_deadline_s is not None:
                    timeout_candidates.append(
                        start + policy.round_deadline_s - now
                    )
                if policy.hedge and inflight:
                    timeout_candidates.append(0.05)
                timeout = max(0.0, min(timeout_candidates, default=0.05))

                if not waitables:
                    # Everything runnable is backing off; sleep it out.
                    time.sleep(min(timeout, 0.05) or 0.001)
                    continue

                ready = _mpc.wait(list(waitables), timeout=min(timeout, 60.0))
                now = time.monotonic()
                seen: list[int] = []
                for obj in ready:
                    worker_idx = waitables[obj]
                    if worker_idx not in seen:
                        seen.append(worker_idx)
                for worker_idx in seen:
                    if worker_idx not in inflight:
                        continue
                    conn = self._conns[worker_idx]
                    try:
                        has_reply = conn.poll()
                    except (OSError, EOFError):
                        has_reply = False
                    if has_reply:
                        try:
                            ticket, out = conn.recv()
                        except (EOFError, OSError):
                            recover(worker_idx, "died mid-task", now)
                            continue
                        inf = inflight.get(worker_idx)
                        if inf is None or ticket != inf.ticket:
                            continue  # stale reply from an abandoned dispatch
                        del inflight[worker_idx]
                        finish(worker_idx, inf, out, now)
                    elif not self._procs[worker_idx].is_alive():
                        recover(worker_idx, "crashed", now)
        except WorkerPoolRecoveryError as exc:
            self._settle_inflight(inflight, recovery, grace=0.0)
            exc.recovery = recovery
            raise

        self._settle_inflight(inflight, recovery, grace=0.02)
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise _rebuild_exception(errors[0][1])
        return PoolRunResult(results, worker_of, recovery)

    def _settle_inflight(self, inflight: dict[int, _Inflight],
                         recovery: PoolRecovery, grace: float) -> None:
        """Leave no worker mid-task: drain late replies (briefly) or
        kill+respawn, so the next round starts protocol-clean."""
        deadline = time.monotonic() + grace
        for worker_idx in list(inflight):
            del inflight[worker_idx]
            conn = self._conns[worker_idx]
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if conn.poll(remaining):
                    conn.recv()  # late reply for abandoned work: discard
                    continue
            except (OSError, EOFError):
                pass
            try:
                self._respawn(worker_idx, recovery, None)
            except WorkerPoolRecoveryError:
                pass  # pool marked broken; get_pool() rebuilds it next use

    def close(self, timeout: float = 2.0) -> None:
        """Shut the workers down, escalating until none survives:
        cooperative stop → join → SIGTERM → join → SIGKILL → join. The
        kill step means even a wedged (e.g. stopped) worker cannot
        outlive the interpreter."""
        for conn in self._conns:
            try:
                conn.send(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=timeout)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._conns = []
        self._procs = []
        self.broken = True


_POOL: WorkerPool | None = None


def get_pool(n_workers: int,
             policy: RecoveryPolicy | None = None) -> WorkerPool:
    """The shared persistent pool, (re)built on size change or breakage.

    ``_POOL`` is nulled *before* the stale pool is closed, so a close
    that raises can never leave the module pointing at a half-closed
    pool. A non-None ``policy`` is installed on the (possibly reused)
    pool without rebuilding it.
    """
    global _POOL
    if _POOL is not None and (_POOL.broken or _POOL.n_workers != n_workers):
        stale, _POOL = _POOL, None
        try:
            stale.close()
        except Exception:
            pass
    if _POOL is None:
        _POOL = WorkerPool(n_workers, policy=policy)
    elif policy is not None:
        _POOL.policy = policy
    return _POOL


def shutdown_pool() -> None:
    """Terminate the shared pool (idempotent; re-created on next use)."""
    global _POOL
    if _POOL is not None:
        stale, _POOL = _POOL, None
        try:
            stale.close()
        finally:
            from .shm import scrub_arenas

            scrub_arenas()


atexit.register(shutdown_pool)
