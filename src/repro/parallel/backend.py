"""Sharded round execution with a deterministic journal-and-replay merge.

How a parallel round runs
-------------------------

1. The parent computes the round's machine assignment (seeded hash — the
   same placement the serial path uses), groups items by machine in the
   serial visiting order (stable argsort), and cuts the group list into
   contiguous shards of roughly equal item counts.
2. The sealed read store is exported into shared memory
   (:mod:`repro.parallel.shm`) and each shard ships to a pool worker
   along with the encoded round worker and its work items.
3. Each pool worker runs the *real* machine programs against a shadow
   read store (zero-copy views of the parent's arrays) and a
   :class:`_JournalStore` in place of the next store: writes are
   validated exactly like the real store would, then journaled. Charged
   reads are journaled too (:class:`~repro.core.hooks.OpRecorder`), into
   the same per-machine op list, so the journal preserves the machine's
   true read/write interleaving.
4. The parent merges in ascending machine order — which is exactly the
   serial execution order — replaying each machine's journal: observer
   hooks fire through the real :class:`~repro.core.hooks.ObserverFan`,
   writes apply through the *real* next store (firing its store hooks and
   advancing its counters naturally), and shadow-store read counters
   merge back as integer deltas.

Because machine placement, per-machine op order, merge order, and every
counter reduction are independent of which OS worker ran which shard,
results, per-round cost ledgers, and trace digests are bit-identical to
the serial backend. The one documented divergence is the *error* path:
when a worker raises (strict-mode budget breach, protocol violation),
the parent re-raises the lowest-machine error like the serial path, but
the abandoned next store holds no partial writes (serially it would).

Replayed per-op hooks observe the context's wiring and identity exactly
as the serial path; budget counters are finalized before
``on_machine_end`` fires (the point where the tracer and metrics snapshot
usage), not incremented per-op during replay.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.core.cost import merge_shard_counters
from repro.core.dds import DistributedDataStore, value_words
from repro.core.errors import RoundProtocolError, ValueSizeError
from repro.core.hooks import OpRecorder
from repro.core.machine import MachineContext

from .pool import (
    CallableShipError,
    WorkerPoolRecoveryError,
    decode_callable,
    encode_callable,
    get_pool,
)
from .shm import ShmArena, attach_store, export_store

__all__ = [
    "run_scalar_round",
    "run_block_round",
    "run_fused_round",
    "TASKS",
]


class _JournalStore:
    """Worker-side stand-in for the round's next store.

    Validates writes exactly like :class:`DistributedDataStore` (so
    model violations raise in the worker, at the op that caused them,
    with the serial path's messages) and appends them to the machine's
    op journal instead of storing. The parent applies the journal to the
    real next store during the merge. Arrays are copied at journal time
    — the real store copies on append, and workers may reuse buffers.
    """

    __slots__ = ("max_words", "ops")

    sealed = False

    def __init__(self, max_words: int, ops: list) -> None:
        self.max_words = max_words
        self.ops = ops

    def write(self, key: Hashable, value: Any) -> None:
        if value_words(key) > self.max_words:
            raise ValueSizeError(f"key exceeds {self.max_words} words: {key!r}")
        if value_words(value) > self.max_words:
            raise ValueSizeError(
                f"value exceeds {self.max_words} words: {value!r}"
            )
        self.ops.append(("w", key, value))

    def write_array(
        self, namespace: str, ids: np.ndarray, values: np.ndarray
    ) -> None:
        if not isinstance(namespace, str):
            raise TypeError(
                f"write_array namespaces must be str, got {type(namespace).__name__}"
            )
        ids = np.array(ids, dtype=np.int64, copy=True)
        values = np.array(values, copy=True)
        if ids.ndim != 1:
            raise ValueError(f"ids must be 1-D, got shape {ids.shape}")
        if values.ndim not in (1, 2) or len(values) != ids.size:
            raise ValueError(
                f"values must be 1-D or 2-D with {ids.size} rows, "
                f"got shape {values.shape}"
            )
        width = 1 if values.ndim == 1 else values.shape[1]
        if 2 > self.max_words:
            raise ValueSizeError(
                f"key exceeds {self.max_words} words: ({namespace!r}, id)"
            )
        if width > self.max_words:
            raise ValueSizeError(
                f"values exceed {self.max_words} words: width {width}"
            )
        self.ops.append(("wa", namespace, ids, values))


# ---------------------------------------------------------------------------
# worker-side tasks (run in pool processes; see pool.TASKS dispatch)
# ---------------------------------------------------------------------------


def _task_machine_shard(payload: dict) -> dict:
    """Run a contiguous range of machines' programs against the shadow
    store; journal their ops; ship results + counters back."""
    store, handles = attach_store(payload["store"])
    try:
        worker = decode_callable(payload["worker"])
        config = payload["config"]
        record_reads = payload["record_reads"]
        scalar_mode = payload["mode"] == "scalar"
        machine_records = []
        for mid, items in payload["machines"]:
            ops: list = []
            journal = _JournalStore(store.max_words, ops)
            ctx = MachineContext(mid, config, store, journal)
            if record_reads:
                recorder = OpRecorder(ops)
                ctx.observer = recorder
                ctx.batch_observer = recorder
            if scalar_mode:
                outs: Any = []
                for item in items:
                    out = worker(ctx, item)
                    outs.append(out)
                    if out is not None:
                        ctx._charge_write(1)
            else:
                out = worker(ctx, items)
                if out is None:
                    outs = None
                else:
                    cols = [
                        np.asarray(c)
                        for c in (out if isinstance(out, tuple) else (out,))
                    ]
                    for col in cols:
                        if len(col) != items.size:
                            raise RoundProtocolError(
                                f"round_batch worker returned {len(col)} rows "
                                f"for a block of {items.size} items"
                            )
                    outs = (isinstance(out, tuple), cols)
                    ctx._charge_write(items.size)
            machine_records.append(
                {
                    "mid": mid,
                    "ops": ops,
                    "outs": outs,
                    "reads": ctx.reads_used,
                    "writes": ctx.writes_used,
                    "rv": ctx.read_violation,
                    "wv": ctx.write_violation,
                }
            )
        return {
            "machines": machine_records,
            "n_reads": store.n_reads,
            "server_reads": (
                store._server_reads if store._route_reads else None
            ),
        }
    finally:
        handles.close()


def _task_fused_shard(payload: dict) -> dict:
    """Run the fused worker over a contiguous item range; journal its
    batch ops; ship the per-machine budget arrays and output columns."""
    from repro.core.runtime import BatchRoundContext

    store, handles = attach_store(payload["store"])
    try:
        worker = decode_callable(payload["worker"])
        work = payload["work"]
        ops: list = []
        journal = _JournalStore(store.max_words, ops)
        gctx = BatchRoundContext(
            payload["config"],
            store,
            journal,
            work,
            payload["assignment"],
            OpRecorder(ops) if payload["record_reads"] else None,
        )
        out = worker(gctx) if work.size else None
        if out is None:
            outs = None
        else:
            cols = [
                np.asarray(c)
                for c in (out if isinstance(out, tuple) else (out,))
            ]
            outs = (isinstance(out, tuple), cols)
            # Row-count validation happens parent-side against the full
            # item count (the serial path's error message); charging the
            # publication writes here keeps the shard's budget arrays
            # complete for the counter merge.
            gctx.charge_publications()
        return {
            "ops": ops,
            "outs": outs,
            "reads_used": gctx.reads_used,
            "writes_used": gctx.writes_used,
            "n_reads": store.n_reads,
            "server_reads": (
                store._server_reads if store._route_reads else None
            ),
        }
    finally:
        handles.close()


#: Task registry dispatched by name in pool workers (only payloads cross
#: the pipe for framework code).
TASKS: dict[str, Callable[[dict], dict]] = {
    "machine_shard": _task_machine_shard,
    "fused_shard": _task_fused_shard,
}


# ---------------------------------------------------------------------------
# parent-side sharding, dispatch, and deterministic merge
# ---------------------------------------------------------------------------


def _record_reads(runtime: Any) -> bool:
    """Whether workers must journal read events for observer replay."""
    fan = runtime._fan
    return fan is not None and (
        fan.any_machine_scalar_hooks
        or fan.any_machine_batch_hooks
        or fan.any_store_hooks
    )


def _dumps(payload: dict) -> bytes:
    """Pre-pickle a shard payload in the parent, so unpicklable work
    items surface as a serial fallback instead of a broken pipe."""
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CallableShipError(
            f"round payload could not be shipped to the process backend: {exc}"
        ) from exc


def _machine_groups(
    assignment: np.ndarray,
) -> list[tuple[int, np.ndarray]]:
    """(machine_id, item_indices) groups in the serial visiting order:
    ascending machine id, items in work order within each machine."""
    order = np.argsort(assignment, kind="stable")
    sorted_assign = assignment[order]
    cuts = np.flatnonzero(np.diff(sorted_assign)) + 1
    starts = np.concatenate(([0], cuts))
    ends = np.concatenate((cuts, [order.size]))
    return [
        (int(sorted_assign[s]), order[s:e]) for s, e in zip(starts, ends)
    ]


def _split_contiguous(weights: Sequence[int], n_shards: int) -> list[tuple[int, int]]:
    """Cut ``range(len(weights))`` into <= n_shards contiguous, nonempty
    spans of roughly equal total weight (greedy prefix walk)."""
    n = len(weights)
    n_shards = max(1, min(n_shards, n))
    total = float(sum(weights))
    bounds: list[tuple[int, int]] = []
    start = 0
    left = n_shards
    remaining = total
    while left > 0:
        # Every shard still to come must get at least one group.
        max_end = n - (left - 1)
        target = remaining / left
        end = start + 1
        acc = weights[start]
        while end < max_end and acc < target:
            acc += weights[end]
            end += 1
        bounds.append((start, end))
        remaining -= acc
        start = end
        left -= 1
        if start >= n:
            break
    return bounds


def _even_ranges(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """<= n_shards contiguous nonempty item ranges covering ``n_items``."""
    n_shards = max(1, min(n_shards, n_items))
    base, extra = divmod(n_items, n_shards)
    bounds = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _merge_store_reads(read_store: DistributedDataStore, res: dict) -> None:
    """Fold a shard's shadow-store read deltas into the real read store."""
    read_store.n_reads += res["n_reads"]
    server_reads = res["server_reads"]
    if server_reads is not None and read_store._route_reads:
        read_store._server_reads += server_reads


def _replay_ops(
    fan: Any,
    ctx: Any,
    read_store: DistributedDataStore,
    next_store: DistributedDataStore,
    ops: list,
) -> None:
    """Fire a machine's journaled ops through the real fan and stores,
    in the exact order the machine issued them."""
    scalar_hooks = fan is not None and fan.any_machine_scalar_hooks
    batch_hooks = fan is not None and fan.any_machine_batch_hooks
    store_hooks = fan is not None and fan.any_store_hooks
    if (
        not (scalar_hooks or batch_hooks or store_hooks)
        and next_store.observer is None
    ):
        # Bulk columnar replay. With no hooks armed the journal is
        # write-only (reads are journaled only when ``_record_reads``),
        # so runs of scalar writes collapse into one bulk apply — one
        # seal check, one dict sweep, one placement hash sweep per
        # namespace — instead of a full ``write()`` call per op.
        # Trace-replaying runs keep the per-op loop below: hook dispatch
        # order is part of the bit-identity contract.
        run: list = []
        for op in ops:
            kind = op[0]
            if kind == "w":
                run.append((op[1], op[2]))
            elif kind == "wa":
                if run:
                    next_store._apply_journal_writes(run)
                    run = []
                next_store.write_array(op[1], op[2], op[3])
            # "r"/"rb": nothing to replay without hooks.
        if run:
            next_store._apply_journal_writes(run)
        return
    for op in ops:
        kind = op[0]
        if kind == "w":
            if scalar_hooks:
                fan.on_machine_write(ctx, op[1])
            next_store.write(op[1], op[2])
        elif kind == "wa":
            if batch_hooks:
                fan.on_machine_write_batch(ctx, op[1], op[2])
            next_store.write_array(op[1], op[2], op[3])
        elif kind == "r":
            if scalar_hooks:
                fan.on_machine_read(ctx, op[1])
            if store_hooks:
                fan.on_store_read(read_store, op[1])
        else:  # "rb"
            if batch_hooks:
                fan.on_machine_read_batch(ctx, op[1], op[2])
            if store_hooks:
                fan.on_store_read_batch(read_store, op[1], op[2])


def _replay_machine(
    runtime: Any,
    read_store: DistributedDataStore,
    next_store: DistributedDataStore,
    mrec: dict,
    worker_idx: int,
) -> MachineContext:
    """Rebuild one machine's round against the real stores: start hook,
    journaled ops, shipped counters, end hook."""
    fan = runtime._fan
    ctx = MachineContext(mrec["mid"], runtime.config, read_store, next_store)
    if fan is not None:
        if fan.any_machine_scalar_hooks:
            ctx.observer = fan
        if fan.any_machine_batch_hooks:
            ctx.batch_observer = fan
    ctx.worker_id = worker_idx
    if fan is not None:
        fan.on_machine_start(ctx)
    _replay_ops(fan, ctx, read_store, next_store, mrec["ops"])
    ctx.reads_used = mrec["reads"]
    ctx.writes_used = mrec["writes"]
    ctx.read_violation = mrec["rv"]
    ctx.write_violation = mrec["wv"]
    if fan is not None:
        fan.on_machine_end(ctx)
    return ctx


def _dispatch_shards(
    runtime: Any,
    read_store: DistributedDataStore,
    task_name: str,
    build_payload: Callable[[dict, tuple[int, int]], dict],
    bounds: list[tuple[int, int]],
) -> tuple[list[dict], list[int], int]:
    """Export the store, ship one payload per shard, collect results.

    Returns ``(shard_results, worker_of, pool_workers)`` where
    ``worker_of[i]`` is the worker whose reply won shard ``i`` (under
    retries or hedging that need not be ``i % n_workers``). The shm
    arena lives exactly as long as the workers need it — unlinked on
    every exit path, including worker exceptions and supervisor
    recovery failures. Dispatch runs supervised: the pool honors the
    runtime's ``recovery_policy`` and, when a ``process_fault_plan`` is
    armed, injects that plan's real process faults; the recovery tally
    (even of a failed attempt) is queued on the runtime for this
    round's ledger.
    """
    pool = get_pool(
        runtime.resolved_workers(),
        getattr(runtime, "recovery_policy", None),
    )
    plan = getattr(runtime, "process_fault_plan", None)
    faults = (
        plan.bind(getattr(runtime, "_round_counter", 0))
        if plan is not None and not plan.is_null
        else None
    )
    try:
        with ShmArena() as arena:
            export = export_store(read_store, arena)
            blobs = [_dumps(build_payload(export, span)) for span in bounds]
            outcome = pool.run_tasks(task_name, blobs, faults=faults)
    except WorkerPoolRecoveryError as exc:
        if hasattr(runtime, "_note_recovery"):
            runtime._note_recovery(exc.recovery)
        raise
    if hasattr(runtime, "_note_recovery"):
        runtime._note_recovery(outcome.recovery)
    return outcome.results, outcome.worker_of, pool.n_workers


def run_scalar_round(
    runtime: Any,
    read_store: DistributedDataStore,
    next_store: DistributedDataStore,
    work: Sequence[Any],
    worker: Callable[..., Any],
    assignment: np.ndarray,
    results: list[Any],
    contexts: dict[int, MachineContext],
) -> None:
    """Process-backend execution of :meth:`AMPCRuntime.round`'s
    work/worker path. Fills ``results`` and ``contexts`` in place.

    Raises :class:`CallableShipError` when the worker or its items
    cannot be shipped; the runtime falls back to the serial loop.
    """
    encoded = encode_callable(worker)
    record_reads = _record_reads(runtime)
    groups = _machine_groups(assignment)
    bounds = _split_contiguous(
        [idx.size for _, idx in groups], runtime.resolved_workers()
    )

    def build_payload(export: dict, span: tuple[int, int]) -> dict:
        s, e = span
        return {
            "store": export,
            "config": runtime.config,
            "worker": encoded,
            "record_reads": record_reads,
            "mode": "scalar",
            "machines": [
                (mid, [work[int(i)] for i in idx]) for mid, idx in groups[s:e]
            ],
        }

    shard_results, worker_of, _ = _dispatch_shards(
        runtime, read_store, "machine_shard", build_payload, bounds
    )
    for shard_idx, (span, res) in enumerate(zip(bounds, shard_results)):
        _merge_store_reads(read_store, res)
        worker_idx = worker_of[shard_idx]
        s, e = span
        for (mid, idx), mrec in zip(groups[s:e], res["machines"]):
            ctx = _replay_machine(
                runtime, read_store, next_store, mrec, worker_idx
            )
            contexts[mid] = ctx
            for i, out in zip(idx, mrec["outs"]):
                results[int(i)] = out


def run_block_round(
    runtime: Any,
    read_store: DistributedDataStore,
    next_store: DistributedDataStore,
    work: np.ndarray,
    assignment: np.ndarray,
    worker: Callable[..., Any],
) -> tuple[Any, dict[int, MachineContext]]:
    """Process-backend execution of the non-fused ``round_batch`` path.

    Returns ``(results, contexts)`` with the serial path's scatter,
    dtype-from-first-block, and all-or-none semantics.
    """
    encoded = encode_callable(worker)
    record_reads = _record_reads(runtime)
    groups = _machine_groups(assignment)
    bounds = _split_contiguous(
        [idx.size for _, idx in groups], runtime.resolved_workers()
    )
    n_items = work.size

    def build_payload(export: dict, span: tuple[int, int]) -> dict:
        s, e = span
        return {
            "store": export,
            "config": runtime.config,
            "worker": encoded,
            "record_reads": record_reads,
            "mode": "block",
            "machines": [(mid, work[idx]) for mid, idx in groups[s:e]],
        }

    shard_results, worker_of, _ = _dispatch_shards(
        runtime, read_store, "machine_shard", build_payload, bounds
    )
    contexts: dict[int, MachineContext] = {}
    out_arrays: list[np.ndarray] | None = None
    tuple_out = False
    silent_blocks = 0
    for shard_idx, (span, res) in enumerate(zip(bounds, shard_results)):
        _merge_store_reads(read_store, res)
        worker_idx = worker_of[shard_idx]
        s, e = span
        for (mid, idx), mrec in zip(groups[s:e], res["machines"]):
            ctx = _replay_machine(
                runtime, read_store, next_store, mrec, worker_idx
            )
            contexts[mid] = ctx
            outs = mrec["outs"]
            if outs is None:
                silent_blocks += 1
                continue
            is_tuple, cols = outs
            if out_arrays is None:
                tuple_out = is_tuple
                out_arrays = [
                    np.empty((n_items,) + col.shape[1:], dtype=col.dtype)
                    for col in cols
                ]
            for dst, col in zip(out_arrays, cols):
                dst[idx] = col
    results: Any = None
    if out_arrays is not None:
        if silent_blocks:
            raise RoundProtocolError(
                "round_batch workers must return outputs for every "
                "block or for none"
            )
        results = tuple(out_arrays) if tuple_out else out_arrays[0]
    return results, contexts


def run_fused_round(
    runtime: Any,
    read_store: DistributedDataStore,
    next_store: DistributedDataStore,
    work: np.ndarray,
    assignment: np.ndarray,
    worker: Callable[..., Any],
) -> tuple[Any, Any]:
    """Process-backend execution of the fused ``round_batch`` path.

    Shards are contiguous *item* ranges; every shard runs the same fused
    program over its slice, so the per-shard batch-op streams are
    positionally aligned slices of the serial op stream. The merge
    re-concatenates each position's arrays in shard order, recovering
    the serial event granularity exactly. Data-dependent control flow
    that diverges across shards is detected (kind/namespace mismatch at
    a stream position) and rejected with a pointer at the serial
    backend. Returns ``(results, gctx)``.
    """
    from repro.core.runtime import BatchRoundContext

    encoded = encode_callable(worker)
    record_reads = _record_reads(runtime)
    fan = runtime._fan
    n_items = work.size
    bounds = _even_ranges(n_items, runtime.resolved_workers())

    def build_payload(export: dict, span: tuple[int, int]) -> dict:
        s, e = span
        return {
            "store": export,
            "config": runtime.config,
            "worker": encoded,
            "record_reads": record_reads,
            "work": work[s:e],
            "assignment": assignment[s:e],
        }

    shard_results, _, _ = _dispatch_shards(
        runtime, read_store, "fused_shard", build_payload, bounds
    )
    for res in shard_results:
        _merge_store_reads(read_store, res)
    reads, writes, read_over, write_over = merge_shard_counters(
        [(res["reads_used"], res["writes_used"]) for res in shard_results],
        runtime.config.read_budget,
        runtime.config.write_budget,
    )

    gctx = BatchRoundContext(
        runtime.config,
        read_store,
        next_store,
        work,
        assignment,
        fan if fan is not None and fan.any_machine_batch_hooks else None,
    )
    if fan is not None:
        fan.on_machine_start(gctx)
    _replay_fused_ops(
        fan, gctx, read_store, next_store, [res["ops"] for res in shard_results]
    )

    outs = [res["outs"] for res in shard_results]
    results: Any = None
    if any(o is not None for o in outs):
        first = next(o for o in outs if o is not None)
        n_cols = len(first[1])
        if any(o is None or len(o[1]) != n_cols for o in outs):
            raise RoundProtocolError(
                "fused round_batch worker diverged across shards (some "
                "returned output columns, some did not); run this round "
                "with backend='serial'"
            )
        tuple_out = first[0]
        cols = [
            np.concatenate([o[1][c] for o in outs]) for c in range(n_cols)
        ]
        for col in cols:
            if len(col) != n_items:
                raise RoundProtocolError(
                    f"fused round_batch worker returned {len(col)} "
                    f"rows for {n_items} work items"
                )
        results = tuple(cols) if tuple_out else cols[0]

    gctx.reads_used[:] = reads
    gctx.writes_used[:] = writes
    gctx._read_over[:] = read_over
    gctx._write_over[:] = write_over
    if fan is not None:
        fan.on_machine_end(gctx)
    return results, gctx


def _replay_fused_ops(
    fan: Any,
    gctx: Any,
    read_store: DistributedDataStore,
    next_store: DistributedDataStore,
    shard_ops: list[list],
) -> None:
    """Merge positionally-aligned shard op streams into serial-granularity
    events: one hook dispatch / one store write per original batch op,
    with each op's arrays re-concatenated in shard (= item) order."""
    batch_hooks = fan is not None and fan.any_machine_batch_hooks
    store_hooks = fan is not None and fan.any_store_hooks
    depth = max((len(ops) for ops in shard_ops), default=0)
    for position in range(depth):
        live = [ops[position] for ops in shard_ops if len(ops) > position]
        kind, namespace = live[0][0], live[0][1]
        for op in live[1:]:
            if op[0] != kind or op[1] != namespace:
                raise RoundProtocolError(
                    "fused round_batch worker diverged across process-"
                    "backend shards (data-dependent op streams); run this "
                    "round with backend='serial'"
                )
        ids = (
            np.concatenate([op[2] for op in live])
            if len(live) > 1
            else live[0][2]
        )
        if kind == "wa":
            values = (
                np.concatenate([op[3] for op in live])
                if len(live) > 1
                else live[0][3]
            )
            if batch_hooks:
                fan.on_machine_write_batch(gctx, namespace, ids)
            next_store.write_array(namespace, ids, values)
        elif kind == "rb":
            if batch_hooks:
                fan.on_machine_read_batch(gctx, namespace, ids)
            if store_hooks:
                fan.on_store_read_batch(read_store, namespace, ids)
        else:
            raise RoundProtocolError(
                f"unexpected scalar op {kind!r} in a fused round journal"
            )
