"""Shared-memory export / attach of sealed DDS stores.

The parent owns the lifecycle: an :class:`ShmArena` creates one POSIX
shared-memory segment per column array of the round's read store, the
workers attach zero-copy numpy views over those segments, and the arena
unlinks everything in a ``finally`` around the round — covering normal
completion, worker exceptions, chaos-induced aborts, and
KeyboardInterrupt. Workers never create or unlink segments, only attach
and close, so a crashed worker cannot leak ``/dev/shm`` entries.

Only the columnar state travels through shared memory (that is the
graph-sized data); the scalar ``_data`` dict — used by scalar-key
algorithms like MIS — is pickled once into a shared blob so the parent
pays serialization once, not once per worker.
"""

from __future__ import annotations

import pickle
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.core.dds import DistributedDataStore, _Column

# Every live arena, so pool teardown can scrub segments even if a round
# was abandoned between arena creation and its ``finally`` (e.g. the
# interpreter is exiting while a supervisor error unwinds). Weak refs:
# the registry must never keep an arena (or its segments) alive.
_ACTIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def scrub_arenas() -> None:
    """Close-and-unlink every still-open arena (idempotent, best-effort).

    Called from :func:`repro.parallel.pool.shutdown_pool`: once the
    workers are gone nothing can be attached to the segments, so any
    arena still open is a leak in the making. A mid-round worker respawn
    does *not* go through here — the dying worker's attach-side handles
    are reclaimed by the kernel and the parent's arena keeps the
    segments alive for the respawned worker to re-attach by name.
    """
    for arena in list(_ACTIVE_ARENAS):
        arena.close()


class StoreExportError(TypeError):
    """The store cannot be exported (e.g. replicated/chaos store)."""


def _mmap_descriptor(array: np.ndarray) -> dict | None:
    """Zero-copy descriptor for a file-backed (``np.memmap``) array.

    When a column array is a memory-mapped ``.npy`` column (or a view of
    one), shipping it through a shared-memory segment would copy the
    whole file back into RAM. Instead the descriptor names the backing
    file and byte offset; workers re-map it read-only, and the page
    cache — already warm from the parent's map — is shared for free.
    Returns None for anything that is not cleanly re-mappable (the
    caller then falls back to a segment copy).
    """
    if array.nbytes == 0 or array.dtype.hasobject:
        return None
    if not array.flags.c_contiguous:
        return None
    root = array
    while isinstance(root.base, np.ndarray):
        root = root.base
    if not isinstance(root, np.memmap) or root.filename is None:
        return None
    delta = array.ctypes.data - root.ctypes.data
    if delta < 0 or delta + array.nbytes > root.nbytes:
        return None
    return {
        "file": str(root.filename),
        "shape": array.shape,
        "dtype": array.dtype.str,
        "offset": int(root.offset) + int(delta),
    }


def disable_worker_shm_tracking() -> None:
    """Stop the resource tracker from tracking attaches in this process.

    On Python <= 3.12 merely *attaching* a segment registers it with the
    (fork-inherited, shared) resource tracker. Workers never create or
    unlink segments — the parent's arena owns the lifecycle — so any
    worker-side register/unregister traffic corrupts the tracker's
    per-name cache (the unlink from the owning parent then logs a
    KeyError). Called once at worker startup; only affects that process.
    """

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register  # type: ignore[assignment]


class ShmArena:
    """Parent-side owner of one parallel round's shared-memory segments.

    Use as a context manager (or call :meth:`close` in a ``finally``):
    every segment created through :meth:`share_array` / :meth:`share_bytes`
    is closed *and unlinked* on exit, on every exit path.
    """

    __slots__ = ("_segments", "closed", "__weakref__")

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.closed = False
        _ACTIVE_ARENAS.add(self)

    def share_array(self, array: np.ndarray) -> dict:
        """Copy ``array`` into a fresh segment; returns a picklable
        descriptor :func:`attached` workers turn back into a view.

        Zero-size and object-dtype arrays are shipped inline (a segment
        cannot hold them / adds nothing). File-backed (``np.memmap``)
        arrays skip the segment entirely: workers re-map the backing
        file read-only, so an out-of-core column crosses the process
        boundary without a second full copy.
        """
        mapped = _mmap_descriptor(array)
        if mapped is not None:
            return mapped
        arr = np.ascontiguousarray(array)
        if arr.nbytes == 0 or arr.dtype.hasobject:
            return {"inline": arr}
        segment = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        self._segments.append(segment)
        view: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        return {"name": segment.name, "shape": arr.shape, "dtype": arr.dtype.str}

    def share_bytes(self, blob: bytes) -> dict:
        """Place an opaque byte blob in a segment (inline when empty)."""
        if not blob:
            return {"inline_bytes": b""}
        segment = shared_memory.SharedMemory(create=True, size=len(blob))
        self._segments.append(segment)
        segment.buf[: len(blob)] = blob
        return {"name": segment.name, "nbytes": len(blob)}

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for segment in self._segments:
            try:
                segment.close()
            except Exception:
                pass
            try:
                segment.unlink()
            except Exception:
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AttachedSegments:
    """Worker-side handle set keeping attached segments' buffers alive.

    Numpy views into a segment are only valid while the SharedMemory
    object is open; a task holds one of these for its whole execution and
    closes it in a ``finally`` (attach-side close only — never unlink).
    """

    __slots__ = ("_segments",)

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def array(self, descriptor: dict) -> np.ndarray:
        inline = descriptor.get("inline")
        if inline is not None:
            return inline
        path = descriptor.get("file")
        if path is not None:
            # File-backed column: re-map read-only. The np.memmap keeps
            # its own file handle alive, so nothing to track here.
            return np.memmap(
                path,
                dtype=np.dtype(descriptor["dtype"]),
                mode="r",
                offset=descriptor["offset"],
                shape=tuple(descriptor["shape"]),
            )
        segment = shared_memory.SharedMemory(name=descriptor["name"])
        self._segments.append(segment)
        return np.ndarray(
            descriptor["shape"],
            dtype=np.dtype(descriptor["dtype"]),
            buffer=segment.buf,
        )

    def blob(self, descriptor: dict) -> Any:
        """A buffer over the blob segment (or the inline bytes)."""
        inline = descriptor.get("inline_bytes")
        if inline is not None:
            return inline
        segment = shared_memory.SharedMemory(name=descriptor["name"])
        self._segments.append(segment)
        return segment.buf[: descriptor["nbytes"]]

    def close(self) -> None:
        for segment in self._segments:
            try:
                segment.close()
            except Exception:
                pass
        self._segments.clear()


def export_store(store: DistributedDataStore, arena: ShmArena) -> dict:
    """Picklable descriptor of a sealed read store, column arrays in shm.

    Column indexes (stable sort order, sorted ids) are built here, once,
    in the parent — workers share the one index instead of re-sorting per
    process. Raises :class:`StoreExportError` for store subclasses
    (replicated / chaos stores have per-key failover state that must stay
    serial).
    """
    if type(store) is not DistributedDataStore:
        raise StoreExportError(
            f"cannot export {type(store).__name__} to the process backend; "
            f"only plain DistributedDataStore rounds shard"
        )
    columns = {}
    for namespace, column in store._columns.items():
        parts = column.share_parts()
        desc = {
            "width": parts["width"],
            "dtype": np.dtype(parts["dtype"]).str,
            "ids": arena.share_array(parts["ids"]),
            "values": arena.share_array(parts["values"]),
            "order": arena.share_array(parts["order"]),
            "sorted_ids": arena.share_array(parts["sorted_ids"]),
            "n_distinct": parts["n_distinct"],
        }
        if "slots" in parts:
            desc["slots"] = arena.share_array(parts["slots"])
            desc["stride"] = parts["stride"]
        columns[namespace] = desc
    blob = (
        pickle.dumps(store._data, protocol=pickle.HIGHEST_PROTOCOL)
        if store._data
        else b""
    )
    return {
        "round_index": store.round_index,
        "n_servers": store.n_servers,
        "seed": store.seed,
        "max_words": store.max_words,
        "track_contention": store.track_contention,
        "data": arena.share_bytes(blob),
        "columns": columns,
    }


def attach_store(
    export: dict,
) -> tuple[DistributedDataStore, AttachedSegments]:
    """Worker-side reconstruction of an exported store as a sealed shadow.

    The shadow's read counters start at zero, so after the task runs they
    hold exactly the deltas (``n_reads``, per-server read loads) the
    parent merges back. Caller must ``close()`` the returned handles when
    done with the store.
    """
    handles = AttachedSegments()
    try:
        columns = {}
        for namespace, desc in export["columns"].items():
            columns[namespace] = _Column.from_shared_parts(
                desc["width"],
                np.dtype(desc["dtype"]),
                handles.array(desc["ids"]),
                handles.array(desc["values"]),
                handles.array(desc["order"]),
                handles.array(desc["sorted_ids"]),
                desc["n_distinct"],
                slots=(
                    handles.array(desc["slots"]) if "slots" in desc else None
                ),
                stride=desc.get("stride", 1),
            )
        raw = handles.blob(export["data"])
        data = pickle.loads(raw) if len(raw) else {}
        store = DistributedDataStore.attach_shadow(
            round_index=export["round_index"],
            n_servers=export["n_servers"],
            seed=export["seed"],
            max_words=export["max_words"],
            track_contention=export["track_contention"],
            data=data,
            columns=columns,
        )
        return store, handles
    except Exception:
        handles.close()
        raise
