"""Multi-core execution backend for the AMPC simulator.

The AMPC model is defined by many machines working concurrently against
distributed data stores; this package makes the simulator execute that
way. A persistent pool of forked OS workers (:mod:`repro.parallel.pool`)
shards each round's machines; the sealed read store's columnar state is
exported into POSIX shared memory (:mod:`repro.parallel.shm`) so workers
serve adaptive reads from zero-copy numpy views; and the per-worker
results, budget charges, write journals, and observer events are merged
back in a fixed machine order (:mod:`repro.parallel.backend`) so that
results, per-round cost ledgers, and trace digests are **bit-identical**
to the serial path.

Selecting the backend
---------------------

Per runtime::

    rt = AMPCRuntime(config, backend="process", n_workers=4)

or ambiently, for code that constructs runtimes internally (the verify
sweep, the CLI, the algorithm entry points)::

    with use_backend("process", n_workers=4):
        result = repro.connectivity(graph, epsilon=0.5, seed=0)

Determinism contract
--------------------

Machine assignment (splitmix64, seeded per round) is computed in the
parent before sharding, so a machine's work is identical regardless of
which worker executes it; worker merges happen in ascending machine-id
order; integer counter reductions are order-independent sums. MPC
runtimes and chaos runtimes with *simulated* faults opt out
(``parallel_capable`` is False) and run serially, so fault plans keep
firing at identical operations; chaos plans injecting only real
*process-level* faults (:class:`~repro.core.chaos.ProcessFaultPlan`)
shard normally — the pool's supervisor (:mod:`repro.parallel.pool`)
recovers crashed, hung, and straggling workers by respawn + shard
re-execution, and merges exactly one winning reply per shard, keeping
the bit-identity contract under every injected fault.

Merge cost
----------

The parent-side journal replay is the serial fraction of every sharded
round. When no observer hooks are armed (the common case), the journal
contains only writes and :mod:`repro.parallel.backend` applies them via
the bulk columnar path — runs of scalar writes collapse into one
``DistributedDataStore._apply_journal_writes`` call per run (single seal
check, one placement hash sweep per namespace) and batch writes go
straight through ``write_array``. Trace-replaying runs keep the per-op
loop so hook dispatch order stays byte-for-byte serial. The measured
constant is recorded in ``benchmarks/BENCH_parallel.json`` under
``replay_merge``.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Iterator

__all__ = [
    "use_backend",
    "use_process_faults",
    "use_recovery",
    "default_backend",
    "default_workers",
    "default_process_faults",
    "default_recovery",
    "autodetect_workers",
    "BACKENDS",
]

BACKENDS = ("serial", "process")

# Ambient backend selection consulted by AMPCRuntime.__init__ when no
# explicit backend= argument is given. Kept here (stdlib-only module) so
# repro.core.runtime can read it without an import cycle; the heavy
# submodules (pool, shm, backend) import core and load lazily below.
# The process-fault plan and recovery policy are held as opaque objects
# for the same reason (their classes live in repro.core.chaos and
# repro.parallel.pool respectively).
_DEFAULT_BACKEND = "serial"
_DEFAULT_WORKERS: int | None = None
_DEFAULT_PROCESS_FAULTS: Any = None
_DEFAULT_RECOVERY: Any = None


def default_backend() -> str:
    """The backend newly-constructed runtimes use (see :func:`use_backend`)."""
    return _DEFAULT_BACKEND


def default_workers() -> int | None:
    """Ambient worker count (None = autodetect at first parallel round)."""
    return _DEFAULT_WORKERS


def default_process_faults() -> Any:
    """Ambient :class:`~repro.core.chaos.ProcessFaultPlan` (or None)."""
    return _DEFAULT_PROCESS_FAULTS


def default_recovery() -> Any:
    """Ambient :class:`~repro.parallel.pool.RecoveryPolicy` (or None =
    the pool's built-in default)."""
    return _DEFAULT_RECOVERY


def autodetect_workers() -> int:
    """Worker count when none was requested: one per core, capped at 8.

    The cap reflects the sharding granularity (machines per round);
    beyond 8 workers the merge constant dominates for the instance sizes
    this simulator targets.
    """
    return max(1, min(8, os.cpu_count() or 1))


@contextlib.contextmanager
def use_backend(backend: str, n_workers: int | None = None) -> Iterator[None]:
    """Ambiently select the execution backend for runtimes constructed
    inside the ``with`` block (and not given an explicit ``backend=``).

    This is how the conformance sweep and the CLI run whole algorithms —
    which build their runtimes internally — on the process backend.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    global _DEFAULT_BACKEND, _DEFAULT_WORKERS
    prev = (_DEFAULT_BACKEND, _DEFAULT_WORKERS)
    _DEFAULT_BACKEND = backend
    _DEFAULT_WORKERS = n_workers
    try:
        yield
    finally:
        _DEFAULT_BACKEND, _DEFAULT_WORKERS = prev


@contextlib.contextmanager
def use_process_faults(plan: Any) -> Iterator[None]:
    """Ambiently arm a :class:`~repro.core.chaos.ProcessFaultPlan` for
    runtimes constructed inside the ``with`` block.

    Only bites on ``backend="process"`` runs — there is no process to
    kill on the serial path — which is exactly what the cross-backend
    oracle exploits: the serial twin of a fault-injected process run is
    automatically fault-free, and the two must still be bit-identical.
    """
    global _DEFAULT_PROCESS_FAULTS
    prev = _DEFAULT_PROCESS_FAULTS
    _DEFAULT_PROCESS_FAULTS = plan
    try:
        yield
    finally:
        _DEFAULT_PROCESS_FAULTS = prev


@contextlib.contextmanager
def use_recovery(policy: Any) -> Iterator[None]:
    """Ambiently select the pool :class:`~repro.parallel.pool.RecoveryPolicy`
    for runtimes constructed inside the ``with`` block (and not given an
    explicit ``recovery=`` argument)."""
    global _DEFAULT_RECOVERY
    prev = _DEFAULT_RECOVERY
    _DEFAULT_RECOVERY = policy
    try:
        yield
    finally:
        _DEFAULT_RECOVERY = prev


# Heavy submodule symbols, loaded on first touch to keep this package
# importable from repro.core.runtime without a cycle.
_LAZY = {
    "WorkerPool": "pool",
    "get_pool": "pool",
    "shutdown_pool": "pool",
    "CallableShipError": "pool",
    "WorkerCrashError": "pool",
    "WorkerPoolRecoveryError": "pool",
    "RecoveryPolicy": "pool",
    "PoolRecovery": "pool",
    "encode_callable": "pool",
    "decode_callable": "pool",
    "ShmArena": "shm",
    "export_store": "shm",
    "attach_store": "shm",
    "scrub_arenas": "shm",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{module}"), name)
