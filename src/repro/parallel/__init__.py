"""Multi-core execution backend for the AMPC simulator.

The AMPC model is defined by many machines working concurrently against
distributed data stores; this package makes the simulator execute that
way. A persistent pool of forked OS workers (:mod:`repro.parallel.pool`)
shards each round's machines; the sealed read store's columnar state is
exported into POSIX shared memory (:mod:`repro.parallel.shm`) so workers
serve adaptive reads from zero-copy numpy views; and the per-worker
results, budget charges, write journals, and observer events are merged
back in a fixed machine order (:mod:`repro.parallel.backend`) so that
results, per-round cost ledgers, and trace digests are **bit-identical**
to the serial path.

Selecting the backend
---------------------

Per runtime::

    rt = AMPCRuntime(config, backend="process", n_workers=4)

or ambiently, for code that constructs runtimes internally (the verify
sweep, the CLI, the algorithm entry points)::

    with use_backend("process", n_workers=4):
        result = repro.connectivity(graph, epsilon=0.5, seed=0)

Determinism contract
--------------------

Machine assignment (splitmix64, seeded per round) is computed in the
parent before sharding, so a machine's work is identical regardless of
which worker executes it; worker merges happen in ascending machine-id
order; integer counter reductions are order-independent sums. Chaos and
MPC runtimes opt out (``parallel_capable`` is False) and run serially,
so fault plans keep firing at identical operations.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Iterator

__all__ = [
    "use_backend",
    "default_backend",
    "default_workers",
    "autodetect_workers",
    "BACKENDS",
]

BACKENDS = ("serial", "process")

# Ambient backend selection consulted by AMPCRuntime.__init__ when no
# explicit backend= argument is given. Kept here (stdlib-only module) so
# repro.core.runtime can read it without an import cycle; the heavy
# submodules (pool, shm, backend) import core and load lazily below.
_DEFAULT_BACKEND = "serial"
_DEFAULT_WORKERS: int | None = None


def default_backend() -> str:
    """The backend newly-constructed runtimes use (see :func:`use_backend`)."""
    return _DEFAULT_BACKEND


def default_workers() -> int | None:
    """Ambient worker count (None = autodetect at first parallel round)."""
    return _DEFAULT_WORKERS


def autodetect_workers() -> int:
    """Worker count when none was requested: one per core, capped at 8.

    The cap reflects the sharding granularity (machines per round);
    beyond 8 workers the merge constant dominates for the instance sizes
    this simulator targets.
    """
    return max(1, min(8, os.cpu_count() or 1))


@contextlib.contextmanager
def use_backend(backend: str, n_workers: int | None = None) -> Iterator[None]:
    """Ambiently select the execution backend for runtimes constructed
    inside the ``with`` block (and not given an explicit ``backend=``).

    This is how the conformance sweep and the CLI run whole algorithms —
    which build their runtimes internally — on the process backend.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    global _DEFAULT_BACKEND, _DEFAULT_WORKERS
    prev = (_DEFAULT_BACKEND, _DEFAULT_WORKERS)
    _DEFAULT_BACKEND = backend
    _DEFAULT_WORKERS = n_workers
    try:
        yield
    finally:
        _DEFAULT_BACKEND, _DEFAULT_WORKERS = prev


# Heavy submodule symbols, loaded on first touch to keep this package
# importable from repro.core.runtime without a cycle.
_LAZY = {
    "WorkerPool": "pool",
    "get_pool": "pool",
    "shutdown_pool": "pool",
    "CallableShipError": "pool",
    "WorkerCrashError": "pool",
    "encode_callable": "pool",
    "decode_callable": "pool",
    "ShmArena": "shm",
    "export_store": "shm",
    "attach_store": "shm",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f"{__name__}.{module}"), name)
