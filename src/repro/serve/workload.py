"""Synthetic traffic models: arrivals × key popularity × operation mix.

The workload vocabulary standard in caching/serving simulators (Icarus'
stationary Poisson/Zipf workloads; the uniform/Zipfian/hotspot key
generators of storage benchmarks), specialized to the engine's request
kinds. A :class:`WorkloadConfig` is three independent choices:

* **arrivals** — ``poisson`` (exponential inter-arrival gaps at
  ``rate`` req/s) or ``bursty`` (``burst_size`` requests arriving
  simultaneously, inter-burst gaps preserving the same average rate;
  the open-loop pattern that actually exercises admission control —
  and keeps shed/served accounting deterministic, since a whole burst
  hits the bounded queue before any tick can drain it).
* **popularity** — ``uniform``, ``zipfian`` (P(rank k) ∝ 1/k^s over a
  seed-shuffled rank→vertex map), or ``hotspot`` (``hot_weight`` of
  traffic on a ``hot_fraction`` slice of the keyspace).
* **mix** — op ratios over :data:`~repro.serve.engine.REQUEST_KINDS`.

:func:`generate` expands a config into a deterministic event list
(timestamps are *virtual* seconds — the loadgen replays them against a
virtual clock, see :mod:`repro.serve.loadgen`). Determinism: one
``numpy`` generator seeded from ``config.seed`` drives everything, so a
(config, n_keys) pair always yields the same stream, which is what the
seed-matrix determinism tests pin down.

:data:`STANDARD_WORKLOADS` names the three patterns the checked-in
``benchmarks/BENCH_serve.json`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from .engine import REQUEST_KINDS, ServeRequest

ARRIVAL_MODELS = ("poisson", "bursty")
POPULARITY_MODELS = ("uniform", "zipfian", "hotspot")

#: Default operation mix: membership-heavy with the lookup kinds riding
#: along — the "mixed membership/connectivity workload" of ROADMAP item 1.
DEFAULT_MIX = (
    ("mis_member", 0.40),
    ("component_of", 0.20),
    ("same_component", 0.20),
    ("subtree_size", 0.20),
)


@dataclass(frozen=True)
class WorkloadConfig:
    """One synthetic traffic pattern (see the module docstring).

    Attributes:
        rate: average offered load, requests per virtual second.
        burst_size: requests per burst (``bursty`` arrivals only).
        zipf_s: Zipf exponent (``zipfian`` popularity only).
        hot_fraction / hot_weight: hotspot size and traffic share
            (``hotspot`` popularity only).
        mix: (kind, weight) op ratios; weights are normalized.
    """

    name: str = "custom"
    arrivals: str = "poisson"
    rate: float = 2000.0
    burst_size: int = 32
    popularity: str = "uniform"
    zipf_s: float = 1.1
    hot_fraction: float = 0.1
    hot_weight: float = 0.9
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX
    n_requests: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrivals not in ARRIVAL_MODELS:
            raise ValueError(
                f"arrivals must be one of {ARRIVAL_MODELS}, "
                f"got {self.arrivals!r}"
            )
        if self.popularity not in POPULARITY_MODELS:
            raise ValueError(
                f"popularity must be one of {POPULARITY_MODELS}, "
                f"got {self.popularity!r}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst_size < 1:
            raise ValueError(
                f"burst_size must be >= 1, got {self.burst_size}"
            )
        if not self.mix:
            raise ValueError("mix must name at least one request kind")
        for kind, weight in self.mix:
            if kind not in REQUEST_KINDS:
                raise ValueError(f"unknown request kind in mix: {kind!r}")
            if weight < 0:
                raise ValueError(f"negative mix weight for {kind!r}")


@dataclass(frozen=True)
class ServeEvent:
    """One arriving request with its virtual arrival time (seconds)."""

    time: float
    request: ServeRequest


#: The named patterns reported in BENCH_serve.json: steady uniform
#: traffic, steady skewed traffic, and bursty traffic hammering a
#: hotspot (the admission-control stressor).
STANDARD_WORKLOADS = {
    "poisson-uniform": WorkloadConfig(
        name="poisson-uniform", arrivals="poisson", popularity="uniform"
    ),
    "poisson-zipf": WorkloadConfig(
        name="poisson-zipf", arrivals="poisson", popularity="zipfian"
    ),
    "bursty-hotspot": WorkloadConfig(
        name="bursty-hotspot", arrivals="bursty", popularity="hotspot"
    ),
}


def workload_config(name: str, **overrides) -> WorkloadConfig:
    """A standard pattern by name, with field overrides.

    >>> workload_config("poisson-zipf", n_requests=50, seed=3)
    """
    if name not in STANDARD_WORKLOADS:
        raise ValueError(
            f"unknown workload {name!r}; expected one of "
            f"{sorted(STANDARD_WORKLOADS)}"
        )
    return replace(STANDARD_WORKLOADS[name], **overrides)


def _arrival_times(config: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    n = config.n_requests
    if config.arrivals == "poisson":
        gaps = rng.exponential(scale=1.0 / config.rate, size=n)
        return np.cumsum(gaps)
    # bursty: every burst's requests arrive at the same instant (the
    # pure open-loop stressor — a full burst hits admission control
    # before any tick can drain), inter-burst gaps sized to keep the
    # average offered rate equal to `rate`. Simultaneity also keeps
    # rejection accounting deterministic: which requests are shed never
    # depends on how fast the host served the previous tick.
    burst = config.burst_size
    n_bursts = -(-n // burst)
    starts = np.arange(n_bursts, dtype=np.float64) * (burst / config.rate)
    return np.repeat(starts, burst)[:n]


def _key_sampler(
    config: WorkloadConfig, n_keys: int, rng: np.random.Generator
):
    if config.popularity == "uniform":
        return lambda size: rng.integers(0, n_keys, size=size)
    if config.popularity == "zipfian":
        ranks = np.arange(1, n_keys + 1, dtype=np.float64)
        p = ranks ** -config.zipf_s
        p /= p.sum()
        key_of_rank = rng.permutation(n_keys)
        return lambda size: key_of_rank[rng.choice(n_keys, size=size, p=p)]
    # hotspot
    perm = rng.permutation(n_keys)
    n_hot = max(1, int(round(config.hot_fraction * n_keys)))
    hot, cold = perm[:n_hot], perm[n_hot:]
    if cold.size == 0:
        cold = hot

    def sample(size: int) -> np.ndarray:
        take_hot = rng.random(size) < config.hot_weight
        keys = cold[rng.integers(0, cold.size, size=size)]
        keys[take_hot] = hot[rng.integers(0, hot.size, size=int(take_hot.sum()))]
        return keys

    return sample


def generate(config: WorkloadConfig, n_keys: int) -> list[ServeEvent]:
    """Expand ``config`` into a deterministic arrival-ordered event list.

    ``n_keys`` is the engine's vertex count; all sampled keys are in
    ``[0, n_keys)``.
    """
    if n_keys < 1:
        raise ValueError(f"n_keys must be >= 1, got {n_keys}")
    rng = np.random.default_rng(config.seed)
    n = config.n_requests
    times = _arrival_times(config, rng)
    sample_keys = _key_sampler(config, n_keys, rng)
    kinds = [k for k, _ in config.mix]
    weights = np.asarray([w for _, w in config.mix], dtype=np.float64)
    weights = weights / weights.sum()
    kind_ids = rng.choice(len(kinds), size=n, p=weights)
    keys = sample_keys(n)
    keys2 = sample_keys(n)  # drawn for every event to keep streams aligned
    events = []
    for i in range(n):
        kind = kinds[kind_ids[i]]
        key2 = int(keys2[i]) if kind == "same_component" else -1
        events.append(ServeEvent(
            time=float(times[i]),
            request=ServeRequest(kind=kind, key=int(keys[i]), key2=key2),
        ))
    return events
