"""Request scheduler: admission control, bounded queue, batched ticks.

Sits between a traffic source (:mod:`repro.serve.workload` /
:mod:`repro.serve.loadgen`, or the ``repro serve`` CLI) and a
:class:`~repro.serve.engine.ServingEngine`. The scheduler owns the two
serving knobs:

* ``max_queue`` — bounded-queue depth. :meth:`RequestScheduler.submit`
  rejects once the queue is full (load shedding); rejections are counted
  here and in the ``serve.rejected`` metric, never silently dropped.
* ``batch_window`` — requests per tick. Each :meth:`RequestScheduler.step`
  pops up to one window and executes it as one adaptive round, so the
  window trades per-request latency against round amortization — the
  serving analogue of the batch engine's fusing.

Clocking is caller-supplied: ``submit(..., now=t)`` stamps arrival and
``step(completed_at=t)`` stamps completion, so the same scheduler serves
wall-clock interactive use (defaults: ``time.perf_counter``) and the
loadgen's virtual-time queueing simulation. Latency = completion −
arrival (queue wait + service) is observed into the ``serve.latency_s``
histogram of the engine's :class:`~repro.observe.metrics.MetricsRegistry`;
:meth:`RequestScheduler.percentiles` reads p50/p95/p99 back out via
:meth:`~repro.observe.metrics.Histogram.quantile`.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from .engine import ServeRequest, ServeResponse, ServingEngine

#: Percentiles reported by :meth:`RequestScheduler.percentiles`.
LATENCY_PERCENTILES = (0.50, 0.95, 0.99)


@dataclass(frozen=True)
class AdmissionControl:
    """The scheduler's two knobs (see the module docstring)."""

    max_queue: int = 256
    batch_window: int = 32

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.batch_window < 1:
            raise ValueError(
                f"batch_window must be >= 1, got {self.batch_window}"
            )


class RequestScheduler:
    """Admission-controlled front of a :class:`ServingEngine`.

    Attributes:
        accepted / rejected / completed: request accounting. Every
            submitted request ends up in exactly one of
            ``rejected`` or (eventually) ``completed``.
    """

    def __init__(
        self,
        engine: ServingEngine,
        *,
        admission: AdmissionControl | None = None,
        metrics=None,
    ) -> None:
        """``metrics`` is the registry for the scheduler's instruments
        (admission counters, latency histogram, queue-depth gauge);
        default: the engine's registry. Pass a fresh
        :class:`~repro.observe.metrics.MetricsRegistry` to scope latency
        percentiles to one scheduler's lifetime — the loadgen does, so
        each workload run reports its own distribution even when
        several reuse one resident engine."""
        self.engine = engine
        self.admission = admission or AdmissionControl()
        self._queue: deque[tuple[ServeRequest, float]] = deque()
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        #: wall-clock service time of the most recent tick (seconds).
        self.last_service_s = 0.0
        self.metrics = engine.metrics if metrics is None else metrics
        self._accepted_c = self.metrics.counter("serve.accepted")
        self._rejected_c = self.metrics.counter("serve.rejected")
        self._latency_h = self.metrics.histogram("serve.latency_s")
        self._depth_g = self.metrics.gauge("serve.queue_depth_peak")

    @property
    def pending(self) -> int:
        """Requests accepted but not yet served."""
        return len(self._queue)

    def submit(self, request: ServeRequest, *, now: float | None = None) -> bool:
        """Admit ``request`` or shed it; returns whether it was admitted.

        ``now`` is the arrival timestamp (default: wall clock); latency
        is measured from it, so queue wait counts.
        """
        if len(self._queue) >= self.admission.max_queue:
            self.rejected += 1
            self._rejected_c.inc()
            return False
        self.engine.validate(request)
        arrival = time.perf_counter() if now is None else now
        self._queue.append((request, arrival))
        self.accepted += 1
        self._accepted_c.inc()
        self._depth_g.set_max(len(self._queue))
        return True

    def step(self, *, now: float | None = None) -> list[ServeResponse]:
        """Serve one tick: up to ``batch_window`` queued requests.

        ``now`` is the tick's start timestamp on the caller's clock
        (default: wall clock). The scheduler measures the tick's service
        wall time itself (exposed as :attr:`last_service_s`) and stamps
        every request's completion as ``now + service``, so latency =
        queue wait + service on a single consistent clock — wall for
        interactive use, virtual for the loadgen simulation.
        """
        if not self._queue:
            self.last_service_s = 0.0
            return []
        window = self.admission.batch_window
        batch: list[tuple[ServeRequest, float]] = []
        while self._queue and len(batch) < window:
            batch.append(self._queue.popleft())
        start_wall = time.perf_counter()
        start = start_wall if now is None else now
        responses = self.engine.execute([req for req, _ in batch])
        self.last_service_s = time.perf_counter() - start_wall
        done = start + self.last_service_s
        for (_req, arrival), resp in zip(batch, responses):
            resp.latency_s = max(0.0, done - arrival)
            self._latency_h.observe(resp.latency_s)
        self.completed += len(responses)
        return responses

    def drain(self, *, now: float | None = None) -> list[ServeResponse]:
        """Serve ticks until the queue is empty.

        In virtual-time mode the clock advances by each tick's measured
        service time, so queue wait accrues tick over tick.
        """
        responses: list[ServeResponse] = []
        clock = now
        while self._queue:
            responses.extend(self.step(now=clock))
            if clock is not None:
                clock += self.last_service_s
        return responses

    def percentiles(self) -> dict[str, float | None]:
        """p50/p95/p99 latency (seconds) from the observe histogram."""
        hist = self._latency_h
        quantile = getattr(hist, "quantile", None)
        if quantile is None:  # disabled registry hands out null instruments
            return {f"p{int(q * 100)}": None for q in LATENCY_PERCENTILES}
        return {
            f"p{int(q * 100)}": quantile(q) for q in LATENCY_PERCENTILES
        }

    def counts(self) -> dict[str, int]:
        """Accounting snapshot (accepted / rejected / completed / pending)."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "pending": len(self._queue),
        }
