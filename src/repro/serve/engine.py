"""The resident serving engine: build + seal once, answer queries forever.

The build phase runs the batch algorithms once — LFMIS priorities π
(the same salt :func:`repro.algorithms.mis.maximal_independent_set`
uses), :func:`repro.algorithms.connectivity.connectivity` labels, and a
:func:`repro.algorithms.tree_ops.root_forest` over the spanning forest —
and publishes the results as sealed columnar state via
:meth:`repro.core.runtime.AMPCRuntime.publish_state`:

* ``("deg", v) -> (degree, base)`` and ``("nb", pos) -> (u, π_u)`` —
  the π-sorted flat adjacency the §5 query process walks (identical
  key layout to :mod:`repro.algorithms.mis`).
* ``("comp", v) -> label`` — component labels for ``component_of`` /
  ``same_component`` lookups.
* ``("sub", v) -> (subtree_size, root)`` — subtree aggregates from the
  rooted spanning forest.

The serve phase answers :class:`ServeRequest` batches ("ticks"): each
tick is one adaptive round executed through
:meth:`~repro.core.runtime.AMPCRuntime.query_round`, so it pays model
costs like any round — per-machine read budgets, per-server contention,
a :class:`~repro.core.cost.RoundStats` ledger row — and then rolls the
runtime back to the resident checkpoint. Per-request read deltas are
measured inside the worker (items on a machine run sequentially), which
is what makes the per-request ledgers reconcile exactly against the
tick rows and the :mod:`repro.observe` counters (see
:meth:`ServingEngine.reconcile`).

MIS membership is answered by the *uncapped* §5 query process
(Theorem 2): with capacity ≥ n + 1 the truncated query never truncates,
so the answer equals the greedy LFMIS over π exactly.

Scheduling/admission lives in :mod:`repro.serve.scheduler`; synthetic
traffic in :mod:`repro.serve.workload`; the benchmark driver in
:mod:`repro.serve.loadgen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.algorithms.connectivity import connectivity
from repro.algorithms.mis import (
    _IN,
    _Counter,
    _pi_sorted_csr,
    _truncated_query,
)
from repro.algorithms.msf import spanning_forest
from repro.algorithms.tree_ops import root_forest
from repro.core.config import AMPCConfig
from repro.core.cost import RunReport, merge_reports
from repro.core.runtime import AMPCRuntime
from repro.graph.graph import Graph
from repro.observe.metrics import MetricsRegistry
from repro.primitives.sampling import random_priorities

#: Request kinds the engine serves. ``mis_member`` runs the §5 adaptive
#: query process; the others are sealed-state point reads.
REQUEST_KINDS = ("mis_member", "component_of", "same_component", "subtree_size")


@dataclass(frozen=True)
class ServeRequest:
    """One serving request.

    Attributes:
        kind: one of :data:`REQUEST_KINDS`.
        key: the vertex queried.
        key2: second vertex, for ``same_component``; -1 otherwise.
    """

    kind: str
    key: int
    key2: int = -1


@dataclass
class ServeResponse:
    """Answer + per-request cost ledger for one request.

    ``reads`` is the request's exact charged adaptive-read count (the
    delta of its machine's budget counter around the item; shared keys
    already cached on the machine cost the request nothing, mirroring
    model assumption 4). ``writes`` is the result-publication write.
    ``query_calls`` counts §5 recursive calls (``mis_member`` only).
    ``latency_s`` is stamped by the scheduler, not the engine.
    """

    request: ServeRequest
    value: Any
    reads: int
    writes: int
    query_calls: int
    tick: int
    latency_s: float | None = None


class ServingEngine:
    """Long-lived engine: sealed resident state + the query loop.

    Args:
        graph: the graph to serve.
        epsilon: space exponent ε (when ``config`` is None).
        seed: reproducibility seed — fixes π, machine placement, and
            therefore every answer and every ledger entry.
        config: explicit deployment.
        backend: ``repro.parallel`` backend for query rounds
            ("serial" / "process"; default: ambient backend).
        n_workers: worker processes for the process backend.
        query_cap: §5 per-request call capacity. Default ``n + 1`` =
            uncapped (exact membership); lower values trade exactness
            for bounded per-request cost and may answer ``None``.
        metrics: a :class:`~repro.observe.metrics.MetricsRegistry` to
            instrument (default: a fresh enabled registry).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        epsilon: float = 0.5,
        seed: int = 0,
        config: AMPCConfig | None = None,
        backend: str | None = None,
        n_workers: int | None = None,
        query_cap: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.graph = graph
        n = graph.n
        if config is None:
            config = AMPCConfig.for_input(
                max(n + graph.m, 1), epsilon=epsilon, seed=seed
            )
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()

        # -- build phase: batch algorithms, merged into one build ledger --
        conn = connectivity(graph, config=config)
        forest_edges, msf_result = spanning_forest(
            graph, epsilon=config.epsilon, seed=config.seed
        )
        forest = Graph.from_edges(n, forest_edges)
        rooted = root_forest(
            forest, epsilon=config.epsilon, seed=config.seed
        )
        self.pi = random_priorities(n, config.rng(salt=0x315))
        indptr, indices = _pi_sorted_csr(graph, self.pi)
        self.labels = conn.labels
        self.n_components = conn.n_components
        self.subtree_size = rooted.subtree_size
        self.root_of = rooted.root_of
        self.forest = forest
        self.build_report = merge_reports(
            [conn.report, msf_result.report, rooted.report]
        )

        # -- seal phase: publish the columns, pin the resident checkpoint --
        self.runtime = AMPCRuntime(config, backend=backend, n_workers=n_workers)
        vs = np.arange(n, dtype=np.int64)
        deg = np.diff(indptr).astype(np.int64)
        base = indptr[:-1].astype(np.int64) if n else np.zeros(0, np.int64)
        pos = np.arange(indices.size, dtype=np.int64)
        arrays = [
            ("deg", vs, np.stack([deg, base], axis=1)),
            ("nb", pos, np.stack([indices, self.pi[indices]], axis=1)),
            ("comp", vs, self.labels.astype(np.int64)),
            ("sub", vs, np.stack([self.subtree_size, self.root_of], axis=1)),
        ]
        self.resident = self.runtime.publish_state(arrays=arrays,
                                                   tag="serve:seal")
        self.serve_report = RunReport()
        self.query_cap = int(query_cap) if query_cap is not None else n + 1
        self._tick = 0
        self._responses_total = 0
        self._reads_total = 0
        self._writes_total = 0

    # -- request construction helpers -----------------------------------

    def validate(self, request: ServeRequest) -> None:
        """Raise ValueError on a malformed request."""
        if request.kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {request.kind!r}")
        n = self.graph.n
        if not 0 <= request.key < n:
            raise ValueError(f"request key {request.key} not in [0, {n})")
        if request.kind == "same_component" and not 0 <= request.key2 < n:
            raise ValueError(f"request key2 {request.key2} not in [0, {n})")

    # -- the query loop --------------------------------------------------

    def execute(self, requests: Sequence[ServeRequest]) -> list[ServeResponse]:
        """Serve one tick: a batch of requests in one adaptive round.

        Requests are randomly partitioned over the machines by their key
        (hot keys contend on their machine and their DDS servers, which
        is the contention the ledger row records). Returns responses
        aligned with ``requests``; appends the tick's ledger row to
        :attr:`serve_report` and rolls the runtime back to the resident
        checkpoint, so ticks are mutually independent.
        """
        reqs = list(requests)
        if not reqs:
            return []
        for req in reqs:
            self.validate(req)
        pi = self.pi
        cap = self.query_cap
        tick = self._tick

        def worker(ctx, idx):
            req = reqs[idx]
            before = ctx.reads_used
            calls = 0
            kind = req.kind
            if kind == "mis_member":
                settled = ctx.scratch.setdefault("settled", {})
                counter = _Counter()
                status = _truncated_query(
                    ctx, req.key, int(pi[req.key]), cap, settled, counter
                )
                value = None if status not in (0, 1) else status == _IN
                calls = counter.value
            elif kind == "component_of":
                value = int(ctx.read(("comp", req.key)))
            elif kind == "same_component":
                value = bool(
                    ctx.read(("comp", req.key)) == ctx.read(("comp", req.key2))
                )
            else:  # subtree_size
                size, _root = ctx.read(("sub", req.key))
                value = int(size)
            return (value, ctx.reads_used - before, calls)

        result, rows = self.runtime.query_round(
            list(range(len(reqs))),
            worker,
            resident=self.resident,
            tag=f"serve:tick{tick}",
            item_key=lambda i: ("req", reqs[i].key),
        )
        self._tick += 1
        for row in rows:
            row.index = len(self.serve_report.rounds)
            self.serve_report.add(row)

        requests_c = self.metrics.counter("serve.requests")
        reads_c = self.metrics.counter("serve.reads")
        writes_c = self.metrics.counter("serve.writes")
        calls_c = self.metrics.counter("serve.query_calls")
        ticks_c = self.metrics.counter("serve.ticks")
        batch_h = self.metrics.histogram("serve.batch_size")
        ticks_c.inc()
        batch_h.observe(len(reqs))
        responses = []
        for req, out in zip(reqs, result.results):
            value, reads, calls = out
            responses.append(ServeResponse(
                request=req, value=value, reads=reads, writes=1,
                query_calls=calls, tick=tick,
            ))
            requests_c.inc()
            reads_c.inc(reads)
            writes_c.inc(1)
            calls_c.inc(calls)
            self._responses_total += 1
            self._reads_total += reads
            self._writes_total += 1
        return responses

    def execute_one(self, request: ServeRequest) -> ServeResponse:
        """Serve a single request as its own tick."""
        return self.execute([request])[0]

    # -- ledger reconciliation -------------------------------------------

    def reconcile(self) -> list[str]:
        """Cross-check the three cost accounts; return discrepancies.

        The per-request ledgers (response read/write deltas), the round
        ledger (:attr:`serve_report` row totals), and the observe
        counters (``serve.reads`` / ``serve.writes``) are three routes
        to the same quantities and must agree exactly. An empty list
        means they do.
        """
        problems: list[str] = []
        ledger_reads = self.serve_report.total_reads
        ledger_writes = self.serve_report.total_writes
        if self._reads_total != ledger_reads:
            problems.append(
                f"per-request reads {self._reads_total} != "
                f"serve_report reads {ledger_reads}"
            )
        if self._writes_total != ledger_writes:
            problems.append(
                f"per-request writes {self._writes_total} != "
                f"serve_report writes {ledger_writes}"
            )
        if self.metrics.enabled:
            snap = self.metrics.snapshot()["counters"]
            if snap.get("serve.reads", 0) != ledger_reads:
                problems.append(
                    f"metrics serve.reads {snap.get('serve.reads', 0)} != "
                    f"serve_report reads {ledger_reads}"
                )
            if snap.get("serve.writes", 0) != ledger_writes:
                problems.append(
                    f"metrics serve.writes {snap.get('serve.writes', 0)} != "
                    f"serve_report writes {ledger_writes}"
                )
            if snap.get("serve.requests", 0) != self._responses_total:
                problems.append(
                    f"metrics serve.requests {snap.get('serve.requests', 0)}"
                    f" != responses {self._responses_total}"
                )
        return problems

    # -- introspection ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices served."""
        return self.graph.n

    @property
    def ticks(self) -> int:
        """Query rounds executed so far."""
        return self._tick

    def summary(self) -> dict[str, Any]:
        """Build + serve totals as a JSON-serializable dict."""
        return {
            "n": self.graph.n,
            "m": self.graph.m,
            "n_components": int(self.n_components),
            "backend": self.runtime.backend,
            "query_cap": self.query_cap,
            "build_rounds": self.build_report.n_rounds,
            "ticks": self._tick,
            "requests": self._responses_total,
            "reads": int(self._reads_total),
            "writes": int(self._writes_total),
        }
