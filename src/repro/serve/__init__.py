"""``repro.serve`` — AMPC as a service: a resident query-serving engine.

The paper's §5 query process is *designed* for serving: LFMIS
membership is answered per vertex, adaptively, against resident state.
This package turns the batch simulator into that serving system —
ROADMAP item 1's "sustained QPS and p50/p99 latency" — in four layers:

* **Engine** (:mod:`~repro.serve.engine`): build + seal once
  (:meth:`~repro.core.runtime.AMPCRuntime.publish_state` pins a sealed
  columnar DDS as the resident store), then answer request ticks as
  adaptive query rounds (:meth:`~repro.core.runtime.AMPCRuntime.query_round`)
  that roll back to the resident checkpoint — every tick replays
  bit-identically to a fresh engine's first, and every request carries
  an exact read/write ledger.
* **Scheduler** (:mod:`~repro.serve.scheduler`): admission control
  (bounded queue, load shedding) and batched ticks; latency percentiles
  from :mod:`repro.observe` histograms.
* **Workload** (:mod:`~repro.serve.workload`): Poisson/bursty arrivals
  × uniform/Zipfian/hotspot popularity × mixed op ratios, deterministic
  under a seed.
* **Loadgen** (:mod:`~repro.serve.loadgen`): the traffic driver behind
  ``repro loadgen`` and the checked-in ``benchmarks/BENCH_serve.json``.

Quick start (also what the ``repro serve`` CLI does)::

    from repro.graph import generators
    from repro.serve import ServingEngine, run_loadgen

    engine = ServingEngine(generators.erdos_renyi_gnm(1000, 4000, 0), seed=0)
    result = run_loadgen(engine, "poisson-zipf")
    print(result.summary())   # qps, p50/p95/p99, admission accounting

See ``docs/serving.md`` for the architecture and knobs.
"""

from .engine import (
    REQUEST_KINDS,
    ServeRequest,
    ServeResponse,
    ServingEngine,
)
from .loadgen import LoadgenResult, loadgen_matrix, run_loadgen
from .scheduler import AdmissionControl, RequestScheduler
from .workload import (
    STANDARD_WORKLOADS,
    ServeEvent,
    WorkloadConfig,
    generate,
    workload_config,
)

__all__ = [
    "REQUEST_KINDS",
    "STANDARD_WORKLOADS",
    "AdmissionControl",
    "LoadgenResult",
    "RequestScheduler",
    "ServeEvent",
    "ServeRequest",
    "ServeResponse",
    "ServingEngine",
    "WorkloadConfig",
    "generate",
    "loadgen_matrix",
    "run_loadgen",
    "workload_config",
]
