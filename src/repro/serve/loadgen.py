"""Traffic driver: replay a workload against a resident engine, report
QPS + tail latency, and reconcile the ledgers.

:func:`run_loadgen` is a discrete-event queueing loop with *measured*
service times: arrivals advance on the workload's virtual clock, each
scheduler tick's service time is the wall-clock cost of actually
executing the adaptive round, and the virtual clock advances by it. The
result is an open-loop benchmark — offered load beyond capacity builds
queue, queue wait enters the latency percentiles, and overflow beyond
``max_queue`` is shed and accounted — while every reported number stays
deterministic in *value* (answers, reads, rejections) for a fixed
(engine seed, workload seed); only the timings are host-dependent.

Reported per run (:class:`LoadgenResult.summary`):

* **qps** — completed requests / busy wall time (sustained service
  throughput of the engine, the ROADMAP item 1 headline number).
* **p50/p95/p99** — latency percentiles from the ``serve.latency_s``
  :class:`~repro.observe.metrics.Histogram` (queue wait + service).
* **accepted / rejected / completed** — admission accounting.
* **reconciled** — whether the per-request ledgers, the tick rows, and
  the observe counters agree (:meth:`ServingEngine.reconcile`).

:func:`loadgen_matrix` runs workload × backend grids and produces the
schema checked in as ``benchmarks/BENCH_serve.json`` (see
``docs/serving.md`` for how to read it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.observe.metrics import MetricsRegistry

from .engine import ServeResponse, ServingEngine
from .scheduler import AdmissionControl, RequestScheduler
from .workload import ServeEvent, WorkloadConfig, generate, workload_config


@dataclass
class LoadgenResult:
    """Outcome of one :func:`run_loadgen` run."""

    workload: WorkloadConfig
    responses: list[ServeResponse]
    scheduler: RequestScheduler
    busy_wall_s: float
    virtual_span_s: float
    reconcile_problems: list[str]

    @property
    def qps(self) -> float:
        """Sustained service throughput: completed / busy wall seconds."""
        if self.busy_wall_s <= 0:
            return 0.0
        return len(self.responses) / self.busy_wall_s

    def summary(self) -> dict[str, Any]:
        """The BENCH_serve row for this run (JSON-serializable)."""
        pct = self.scheduler.percentiles()
        to_ms = lambda v: None if v is None else v * 1e3
        return {
            "workload": self.workload.name,
            "requests": self.workload.n_requests,
            **self.scheduler.counts(),
            "qps": self.qps,
            "p50_ms": to_ms(pct["p50"]),
            "p95_ms": to_ms(pct["p95"]),
            "p99_ms": to_ms(pct["p99"]),
            "busy_wall_s": self.busy_wall_s,
            "virtual_span_s": self.virtual_span_s,
            "reads": int(sum(r.reads for r in self.responses)),
            "query_calls": int(sum(r.query_calls for r in self.responses)),
            "reconciled": not self.reconcile_problems,
        }


def run_loadgen(
    engine: ServingEngine,
    workload: WorkloadConfig | str,
    *,
    admission: AdmissionControl | None = None,
    events: Sequence[ServeEvent] | None = None,
) -> LoadgenResult:
    """Replay ``workload`` against ``engine`` (see the module docstring).

    ``workload`` is a config or a :data:`~repro.serve.workload.STANDARD_WORKLOADS`
    name; pass ``events`` to replay a pre-generated stream instead.
    """
    if isinstance(workload, str):
        workload = workload_config(workload)
    if events is None:
        events = generate(workload, engine.n)
    # A per-run registry scopes the scheduler's latency histogram and
    # admission counters to this run, even when several workload runs
    # reuse one resident engine (engine-lifetime counters still
    # accumulate on engine.metrics and reconcile there).
    scheduler = RequestScheduler(engine, admission=admission,
                                 metrics=MetricsRegistry())
    clock = events[0].time if events else 0.0
    busy = 0.0
    responses: list[ServeResponse] = []
    i = 0
    n_events = len(events)
    while i < n_events or scheduler.pending:
        if not scheduler.pending and i < n_events:
            # Idle: jump the virtual clock to the next arrival.
            clock = max(clock, events[i].time)
        while i < n_events and events[i].time <= clock:
            scheduler.submit(events[i].request, now=events[i].time)
            i += 1
        if not scheduler.pending:
            continue
        served = scheduler.step(now=clock)
        busy += scheduler.last_service_s
        clock += scheduler.last_service_s
        responses.extend(served)
    span = (clock - events[0].time) if events else 0.0
    return LoadgenResult(
        workload=workload,
        responses=responses,
        scheduler=scheduler,
        busy_wall_s=busy,
        virtual_span_s=span,
        reconcile_problems=engine.reconcile(),
    )


def loadgen_matrix(
    graph,
    *,
    workloads: Sequence[str | WorkloadConfig],
    backends: Sequence[str] = ("serial",),
    n_requests: int | None = None,
    seed: int = 0,
    n_workers: int | None = None,
    admission: AdmissionControl | None = None,
) -> dict[str, Any]:
    """Run a workload × backend grid; the BENCH_serve.json payload.

    A fresh engine is built per backend (resident state identical by
    seed — the answers must match across backends bit-for-bit; only the
    timing columns differ), then each workload replays against it. Rows
    carry :meth:`LoadgenResult.summary` plus the backend and engine
    identity.
    """
    rows: list[dict[str, Any]] = []
    for backend in backends:
        engine = ServingEngine(
            graph, seed=seed, backend=backend, n_workers=n_workers
        )
        for spec in workloads:
            cfg = workload_config(spec) if isinstance(spec, str) else spec
            if n_requests is not None:
                cfg = replace(cfg, n_requests=n_requests)
            result = run_loadgen(engine, cfg, admission=admission)
            row = {"backend": backend, "n": graph.n, "m": graph.m,
                   "seed": seed, **result.summary()}
            rows.append(row)
    return {"rows": rows}
