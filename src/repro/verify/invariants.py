"""Runtime invariant observers: the paper's §2 guarantees, checked live.

The theorems of the paper are quantitative statements about *executions*:
every machine issues at most O(S) queries and writes per round (the budget
invariant), all adaptive reads of round i target the sealed store D_{i-1}
(the round-discipline invariant), work and key-value pairs spread over
machines and DDS servers within the Lemma 2.1 balance bounds, and the whole
execution is a pure function of (input, config.seed). This module turns
each of those statements into an *observer* that watches a run through the
hook points in :mod:`repro.core.runtime`, :mod:`repro.core.machine`, and
:mod:`repro.core.dds` and records an :class:`InvariantViolation` the moment
an execution strays from the model.

Usage::

    from repro.verify.invariants import InvariantSuite

    with InvariantSuite() as suite:
        result = repro.connectivity(graph, seed=0)   # runtimes made inside
    suite.check()          # raises InvariantViolationError on violations

Observers are installed globally (every runtime constructed inside the
``with`` block is watched, including runtimes algorithms build internally)
or per-instance via :meth:`repro.core.runtime.AMPCRuntime.attach_observer`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.cost import RoundStats
from repro.core.dds import DistributedDataStore, ReplicatedDataStore
from repro.core.errors import AMPCError
from repro.core.hooks import RuntimeObserver
from repro.core.machine import MPCMachineContext
from repro.core.runtime import (
    AMPCRuntime,
    MPCRuntime,
    install_observer,
    uninstall_observer,
)


class InvariantViolationError(AMPCError):
    """An execution violated a model invariant (and the suite is strict)."""


@dataclass(frozen=True)
class InvariantViolation:
    """One observed departure from the AMPC model.

    Attributes:
        invariant: which invariant was violated ("budget",
            "store-discipline", "partition-balance", "mpc-discipline", ...).
        message: human-readable description with the observed quantities.
        tag: ledger tag of the round in which it happened, when known.
    """

    invariant: str
    message: str
    tag: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" [{self.tag}]" if self.tag else ""
        return f"{self.invariant}{where}: {self.message}"


class Observer(RuntimeObserver):
    """Base class for conformance observers.

    This is :class:`repro.core.hooks.RuntimeObserver` under its historical
    verify-layer name. It must stay an *empty* subclass: the runtime's
    :class:`~repro.core.hooks.ObserverFan` only dispatches hooks a subclass
    actually overrides, and redefining hooks here (even as no-ops) would
    make every conformance observer look like it overrides everything.
    """


class RecordingObserver(Observer):
    """Observer that appends violations to a shared sink."""

    invariant = "invariant"

    def __init__(self, sink: list[InvariantViolation], strict: bool = False):
        self.violations = sink
        self.strict = strict

    def record(self, message: str, tag: str = "") -> None:
        violation = InvariantViolation(self.invariant, message, tag)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolationError(str(violation))


class BudgetObserver(RecordingObserver):
    """Paper §2: every machine issues ≤ O(S) queries and writes per round.

    The concrete ceiling is ``config.read_budget`` / ``config.write_budget``
    (``budget_multiplier · space``). Simulated rounds are checked machine by
    machine; analytically-charged primitives are checked against their
    recorded per-machine maxima.
    """

    invariant = "budget"

    def on_round_end(self, runtime, stats, contexts, read_store, next_store):
        cfg = runtime.config
        for ctx in contexts:
            if ctx.reads_used > cfg.read_budget:
                self.record(
                    f"machine {ctx.machine_id} issued {ctx.reads_used} reads "
                    f"(budget {cfg.read_budget})",
                    stats.tag,
                )
            if ctx.writes_used > cfg.write_budget:
                self.record(
                    f"machine {ctx.machine_id} issued {ctx.writes_used} "
                    f"writes (budget {cfg.write_budget})",
                    stats.tag,
                )

    def on_charge(self, runtime, stats):
        cfg = runtime.config
        if stats.max_machine_reads > cfg.read_budget:
            self.record(
                f"charged primitive needs {stats.max_machine_reads} reads "
                f"per machine (budget {cfg.read_budget})",
                stats.tag,
            )
        if stats.max_machine_writes > cfg.write_budget:
            self.record(
                f"charged primitive needs {stats.max_machine_writes} writes "
                f"per machine (budget {cfg.write_budget})",
                stats.tag,
            )


class StoreDisciplineObserver(RecordingObserver):
    """Paper §2 round discipline: adaptivity confined to a single round.

    In round i machines may read only the *sealed* store D_{i-1} and write
    only the *unsealed* store D_i; D_i seals at the round boundary. The
    observer checks the staging of both stores at round start, that every
    machine read targets the round's designated read store (no reads of
    stale or future stores), that writes land in the designated next store,
    and that the next store is sealed by round end.
    """

    invariant = "store-discipline"

    def __init__(self, sink, strict=False):
        super().__init__(sink, strict)
        # id(runtime) -> (read_store, next_store) of the round in flight.
        self._active: dict[int, tuple[Any, Any]] = {}

    def on_round_start(self, runtime, read_store, next_store):
        if not read_store.sealed:
            self.record(
                f"round started with unsealed read store "
                f"D_{read_store.round_index}"
            )
        if next_store.sealed:
            self.record(
                f"round started with already-sealed next store "
                f"D_{next_store.round_index}"
            )
        if read_store is next_store:
            self.record("read store and next store are the same store")
        if next_store.round_index <= read_store.round_index:
            self.record(
                f"next store D_{next_store.round_index} does not follow "
                f"read store D_{read_store.round_index}"
            )
        self._active[id(runtime)] = (read_store, next_store)

    def on_machine_read(self, ctx, key):
        if not ctx._prev.sealed:
            self.record(
                f"machine {ctx.machine_id} read {key!r} from unsealed store "
                f"D_{ctx._prev.round_index}"
            )
        if ctx._prev is ctx._next:
            self.record(
                f"machine {ctx.machine_id} reads and writes the same store"
            )

    def on_machine_write(self, ctx, key):
        if ctx._next.sealed:
            self.record(
                f"machine {ctx.machine_id} wrote {key!r} into sealed store "
                f"D_{ctx._next.round_index}"
            )

    def on_machine_read_batch(self, ctx, namespace, ids):
        # One check per batch keeps the observed run O(1) per array op
        # while still catching any staging mistake the batch could make.
        if not ctx._prev.sealed:
            self.record(
                f"batch read of {len(ids)} {namespace!r} keys from unsealed "
                f"store D_{ctx._prev.round_index}"
            )
        if ctx._prev is ctx._next:
            self.record(
                f"batch read of {namespace!r} keys targets the store being "
                f"written"
            )

    def on_machine_write_batch(self, ctx, namespace, ids):
        if ctx._next.sealed:
            self.record(
                f"batch write of {len(ids)} {namespace!r} keys into sealed "
                f"store D_{ctx._next.round_index}"
            )

    def on_round_end(self, runtime, stats, contexts, read_store, next_store):
        if not next_store.sealed:
            self.record(
                f"round ended without sealing D_{next_store.round_index}",
                stats.tag,
            )
        expected = self._active.pop(id(runtime), None)
        if expected is not None:
            exp_read, exp_next = expected
            for ctx in contexts:
                if ctx._prev is not exp_read:
                    self.record(
                        f"machine {ctx.machine_id} was wired to a stale "
                        f"read store",
                        stats.tag,
                    )
                if ctx._next is not exp_next:
                    self.record(
                        f"machine {ctx.machine_id} was wired to a stale "
                        f"next store",
                        stats.tag,
                    )


class PartitionBalanceObserver(RecordingObserver):
    """Lemma 2.1 balance: random placement spreads load near-uniformly.

    With r requests spread over P bins by the model's random assignment,
    the maximum bin load is O(r/P + log P) with high probability. The
    observer applies that shape — ``slack · (r/P + 2·log2(P) + 1)`` — to
    (a) the per-machine work-item assignment of every round and (b) the
    per-server read loads of every round's read store. The default slack
    is generous; a violation means placement is *grossly* unbalanced
    (e.g. a broken hash), not that a tail event occurred.

    Rounds that suffered DDS failovers are skipped on the server check:
    an outage legitimately concentrates reads on the surviving replicas.
    """

    invariant = "partition-balance"

    def __init__(self, sink, strict=False, slack: float = 4.0):
        super().__init__(sink, strict)
        self.slack = slack

    def _bound(self, total: int, bins: int) -> float:
        return self.slack * (total / bins + 2.0 * math.log2(max(bins, 2)) + 1.0)

    def on_assignment(self, runtime, assignment, n_items):
        p = runtime.config.n_machines
        if n_items == 0 or p <= 1:
            return
        counts = np.bincount(assignment, minlength=p)
        heaviest = int(counts.max())
        if heaviest > self._bound(n_items, p):
            self.record(
                f"machine assignment heaviest load {heaviest} of {n_items} "
                f"items over {p} machines exceeds "
                f"{self._bound(n_items, p):.1f}"
            )

    def on_round_end(self, runtime, stats, contexts, read_store, next_store):
        if not read_store.track_contention or read_store.n_servers <= 1:
            return
        if isinstance(read_store, ReplicatedDataStore) and (
            read_store.failover_reads or read_store.down_servers
        ):
            return
        loads = read_store.server_read_loads
        total = int(loads.sum())
        if total == 0:
            return
        heaviest = int(loads.max())
        if heaviest > self._bound(total, read_store.n_servers):
            self.record(
                f"DDS server answered {heaviest} of {total} reads over "
                f"{read_store.n_servers} servers, bound "
                f"{self._bound(total, read_store.n_servers):.1f}",
                stats.tag,
            )


class MPCDisciplineObserver(RecordingObserver):
    """MPC baselines must stay message-passing-only (paper §2's simulation).

    An :class:`MPCRuntime` must hand out inbox-only contexts, and those
    contexts must only ever read their own ``("msg", machine_id)`` inbox.
    Both are structurally enforced; the observer asserts the structure
    held, so a future refactor cannot silently grant baselines adaptive
    reads (which would invalidate the Figure 1 comparison).
    """

    invariant = "mpc-discipline"

    def on_machine_read(self, ctx, key):
        if isinstance(ctx, MPCMachineContext):
            if not (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] == "msg"
                and key[1] == ctx.machine_id
            ):
                self.record(
                    f"MPC machine {ctx.machine_id} read non-inbox key {key!r}"
                )

    def on_machine_read_batch(self, ctx, namespace, ids):
        if isinstance(ctx, MPCMachineContext):
            self.record(
                f"MPC machine {ctx.machine_id} issued batch adaptive reads "
                f"of {namespace!r} keys"
            )

    def on_round_end(self, runtime, stats, contexts, read_store, next_store):
        if isinstance(runtime, MPCRuntime):
            for ctx in contexts:
                if not isinstance(ctx, MPCMachineContext):
                    self.record(
                        f"MPC runtime ran non-MPC context "
                        f"{type(ctx).__name__}",
                        stats.tag,
                    )


class TraceObserver(Observer):
    """Records a seed-determinism digest of the execution.

    Collects the model-cost fields of every ledger record (everything except
    wall time, which is host noise) plus per-round store fingerprints. Two
    runs of the same (input, config) must produce equal :meth:`digest`
    values — the runner's seed-determinism check compares them, and
    :mod:`tests.test_verify_determinism` sweeps the seed matrix.
    """

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def _stats_event(self, stats: RoundStats) -> tuple:
        return (
            stats.tag,
            stats.kind,
            stats.rounds,
            stats.total_reads,
            stats.total_writes,
            stats.max_machine_reads,
            stats.max_machine_writes,
            stats.n_machines_active,
            stats.budget_violations,
            stats.max_server_load,
        )

    def on_bootstrap(self, runtime, store, count):
        self.events.append(("bootstrap", count, len(store)))

    def on_round_end(self, runtime, stats, contexts, read_store, next_store):
        self.events.append(
            self._stats_event(stats) + (len(next_store), next_store.n_pairs)
        )

    def on_charge(self, runtime, stats):
        self.events.append(self._stats_event(stats))

    def digest(self) -> str:
        """Stable hex digest of the recorded execution trace."""
        h = hashlib.sha256()
        for event in self.events:
            h.update(repr(event).encode())
        return h.hexdigest()


class InvariantSuite:
    """The standard invariant observers bundled behind one installable unit.

    Args:
        strict: raise :class:`InvariantViolationError` at the first
            violation instead of collecting.
        balance_slack: constant factor of the Lemma 2.1 balance bound.
        trace: also record a :class:`TraceObserver` determinism digest
            (exposed as :attr:`trace`).

    Use as a context manager to observe every runtime constructed in the
    block, or pass ``suite.observers`` to
    :meth:`~repro.core.runtime.AMPCRuntime.attach_observer` one by one.
    """

    def __init__(
        self,
        *,
        strict: bool = False,
        balance_slack: float = 4.0,
        trace: bool = False,
    ) -> None:
        self.strict = strict
        self.balance_slack = balance_slack
        self.violations = []
        self.observers: list[Observer] = [
            BudgetObserver(self.violations, strict),
            StoreDisciplineObserver(self.violations, strict),
            PartitionBalanceObserver(self.violations, strict, balance_slack),
            MPCDisciplineObserver(self.violations, strict),
        ]
        self.trace = TraceObserver() if trace else None
        if self.trace is not None:
            self.observers.append(self.trace)

    def __enter__(self) -> "InvariantSuite":
        for obs in self.observers:
            install_observer(obs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for obs in self.observers:
            uninstall_observer(obs)

    def summary(self) -> dict[str, int]:
        """Violation counts keyed by invariant name."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def check(self) -> None:
        """Raise :class:`InvariantViolationError` if any violation occurred."""
        if self.violations:
            listing = "\n".join(f"  - {v}" for v in self.violations[:20])
            extra = (
                f"\n  ... and {len(self.violations) - 20} more"
                if len(self.violations) > 20
                else ""
            )
            raise InvariantViolationError(
                f"{len(self.violations)} invariant violation(s):\n"
                f"{listing}{extra}"
            )
