"""The ``repro verify`` conformance sweep.

Sweeps every registered algorithm (:mod:`repro.verify.oracles`) over its
compatible generator families and a seed matrix. Each cell

1. generates the workload deterministically from (family, seed, size);
2. runs the algorithm inside an armed :class:`InvariantSuite`, so every
   model-contract violation (budgets, sealing, balance, adaptivity) is
   caught live;
3. checks the differential oracle against the sequential ground truth,
   and — where registered — the MPC baseline (cross-model equivalence);
4. re-runs the cell and compares output digests plus cost-ledger
   summaries (wall time excluded) for seed-determinism;
5. optionally replays the cell on a fault-plan-armed chaos runtime and
   demands the bit-identical answer.

The result is a :class:`ConformanceReport` that serializes to JSON for CI.
"""

from __future__ import annotations

import contextlib
import json
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.core.chaos import FaultPlan, ProcessFaultPlan
from repro.graph import generators
from repro.graph.graph import Graph
from repro.parallel import BACKENDS, use_backend, use_process_faults

from .invariants import InvariantSuite
from .oracles import CASES, AlgorithmCase, Workload


# ---------------------------------------------------------------------------
# generator families
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FamilySpec:
    """A named workload family.

    Attributes:
        name: registry key, referenced by :attr:`AlgorithmCase.families`.
        kind: payload kind produced ("graph", "succ", or "two_cycle").
        make: ``make(n, seed)`` → ``(payload, meta)``; must be a pure
            function of its arguments (the determinism matrix re-invokes
            it and expects the identical instance).
    """

    name: str
    kind: str
    make: Callable[[int, int], tuple[Any, dict]]


FAMILIES: dict[str, FamilySpec] = {}


def _family(name: str, kind: str = "graph"):
    def deco(fn: Callable[[int, int], tuple[Any, dict]]) -> FamilySpec:
        spec = FamilySpec(name, kind, fn)
        FAMILIES[name] = spec
        return spec
    return deco


def _shuffled(graph: Graph, seed: int) -> Graph:
    # Deterministic families (grid, path, star, ...) are varied across
    # seeds by relabeling; the structure stays, the key placement doesn't.
    g, _ = generators.relabel(graph, seed)
    return g


@_family("er")
def _er(n: int, seed: int):
    return generators.erdos_renyi_gnm(n, (3 * n) // 2, seed), {}


@_family("power-law")
def _power_law(n: int, seed: int):
    return generators.barabasi_albert(n, 3, seed), {}


@_family("grid")
def _grid(n: int, seed: int):
    side = max(2, int(np.sqrt(n)))
    return _shuffled(generators.grid(side, side), seed), {}


@_family("tree")
def _tree(n: int, seed: int):
    return generators.random_tree(n, seed), {}


@_family("forest")
def _forest(n: int, seed: int):
    return generators.random_forest(n, max(2, n // 12), seed), {}


@_family("path")
def _path(n: int, seed: int):
    return _shuffled(generators.path(n), seed), {}


@_family("star")
def _star(n: int, seed: int):
    return _shuffled(generators.star(n), seed), {}


@_family("cycles")
def _cycles(n: int, seed: int):
    rng = np.random.default_rng(seed)
    lengths: list[int] = []
    left = n
    while left >= 3:
        k = int(rng.integers(3, max(4, left // 2 + 1)))
        k = min(k, left)
        if left - k in (1, 2):  # leftover too small for its own cycle
            k = left
        lengths.append(k)
        left -= k
    return _shuffled(generators.union_of_cycles(lengths), seed), {}


@_family("one-cycle")
def _one_cycle(n: int, seed: int):
    return _shuffled(generators.cycle(n), seed), {}


@_family("many-cycles")
def _many_cycles(n: int, seed: int):
    count = max(2, n // 6)
    base = [3 + (i % 4) for i in range(count)]
    return _shuffled(generators.union_of_cycles(base), seed), {}


def _even(n: int) -> int:
    return max(6, n - (n % 2))


@_family("one-cycle-inst", kind="two_cycle")
def _one_cycle_inst(n: int, seed: int):
    return generators.two_cycle_instance(_even(n), False, seed), {"two": False}


@_family("two-cycle-inst", kind="two_cycle")
def _two_cycle_inst(n: int, seed: int):
    return generators.two_cycle_instance(_even(n), True, seed), {"two": True}


@_family("random-cycle-inst", kind="two_cycle")
def _random_cycle_inst(n: int, seed: int):
    two = bool(np.random.default_rng(seed).integers(0, 2))
    return generators.two_cycle_instance(_even(n), two, seed), {"two": two}


@_family("list-uniform", kind="succ")
def _list_uniform(n: int, seed: int):
    return generators.linked_list(n, seed), {}


@_family("list-identity", kind="succ")
def _list_identity(n: int, seed: int):
    succ = np.full(n, -1, dtype=np.int64)
    succ[:-1] = np.arange(1, n, dtype=np.int64)
    return succ, {}


@_family("list-reversed", kind="succ")
def _list_reversed(n: int, seed: int):
    succ = np.full(n, -1, dtype=np.int64)
    succ[1:] = np.arange(0, n - 1, dtype=np.int64)
    return succ, {}


def family_names() -> list[str]:
    return list(FAMILIES)


def make_workload(case: AlgorithmCase, family: str, n: int, seed: int) -> Workload:
    """Build one input instance for (algorithm, family, seed).

    Weighted-graph cases reuse the plain graph families and attach
    distinct random weights (deterministic in the seed).
    """
    spec = FAMILIES[family]
    payload, meta = spec.make(n, seed)
    kind = spec.kind
    if case.kind == "weighted":
        if kind != "graph":
            raise ValueError(
                f"family {family!r} ({kind}) cannot feed weighted case "
                f"{case.name!r}"
            )
        payload = generators.with_random_weights(payload, seed + 7919)
        kind = "weighted"
    if kind != case.kind:
        raise ValueError(
            f"family {family!r} produces {kind!r} but case {case.name!r} "
            f"wants {case.kind!r}"
        )
    return Workload(family=family, kind=kind, payload=payload, seed=seed,
                    meta=meta)


# ---------------------------------------------------------------------------
# sweep records
# ---------------------------------------------------------------------------


def _summary_without_walltime(report) -> dict | None:
    if report is None:
        return None
    summary = dict(report.summary())
    summary.pop("wall_time_s", None)
    return summary


@dataclass
class CellRecord:
    """Outcome of one (algorithm, family, seed) conformance cell."""

    algorithm: str
    family: str
    seed: int
    n: int
    m: int
    status: str = "ok"  # ok | fail | error
    oracle_discrepancies: list[str] = field(default_factory=list)
    cross_model_discrepancies: list[str] = field(default_factory=list)
    invariant_violations: list[dict] = field(default_factory=list)
    deterministic: bool | None = None
    chaos_identical: bool | None = None
    backend_identical: bool | None = None
    rounds: int | None = None
    error: str | None = None
    duration_s: float = 0.0
    vectorized: bool = False
    backend: str = "serial"
    process_faults: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def failures(self) -> list[str]:
        """Human-readable reasons this cell is not conformant."""
        reasons = list(self.oracle_discrepancies)
        reasons += [f"[cross-model] {d}" for d in self.cross_model_discrepancies]
        reasons += [f"[invariant:{v['invariant']}] {v['message']}"
                    for v in self.invariant_violations]
        if self.deterministic is False:
            reasons.append("outputs differ between identical runs")
        if self.chaos_identical is False:
            reasons.append("chaos run is not bit-identical to fault-free run")
        if self.backend_identical is False:
            reasons.append(
                "process backend is not bit-identical to serial "
                "(results or per-round ledgers differ)"
            )
        if self.error:
            reasons.append(f"exception: {self.error.splitlines()[-1]}")
        return reasons

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "family": self.family,
            "seed": self.seed,
            "n": self.n,
            "m": self.m,
            "status": self.status,
            "oracle_discrepancies": self.oracle_discrepancies,
            "cross_model_discrepancies": self.cross_model_discrepancies,
            "invariant_violations": self.invariant_violations,
            "deterministic": self.deterministic,
            "chaos_identical": self.chaos_identical,
            "backend_identical": self.backend_identical,
            "rounds": self.rounds,
            "error": self.error,
            "duration_s": round(self.duration_s, 4),
            "vectorized": self.vectorized,
            "backend": self.backend,
            "process_faults": self.process_faults,
        }


@dataclass
class ConformanceReport:
    """Aggregated result of a conformance sweep (JSON-serializable)."""

    records: list[CellRecord]
    settings: dict

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    @property
    def n_cells(self) -> int:
        return len(self.records)

    def summary(self) -> dict:
        by_algorithm: dict[str, dict[str, int]] = {}
        for r in self.records:
            slot = by_algorithm.setdefault(
                r.algorithm, {"cells": 0, "failed": 0}
            )
            slot["cells"] += 1
            if not r.ok:
                slot["failed"] += 1
        return {
            "cells": self.n_cells,
            "failed": sum(1 for r in self.records if not r.ok),
            "invariant_violations": sum(
                len(r.invariant_violations) for r in self.records
            ),
            "oracle_disagreements": sum(
                len(r.oracle_discrepancies)
                + len(r.cross_model_discrepancies)
                for r in self.records
            ),
            "nondeterministic": sum(
                1 for r in self.records if r.deterministic is False
            ),
            "by_algorithm": by_algorithm,
            "ok": self.ok,
        }

    def to_dict(self) -> dict:
        return {
            "settings": self.settings,
            "summary": self.summary(),
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_failures(self) -> str:
        lines = []
        for r in self.records:
            if r.ok:
                continue
            head = f"{r.algorithm} / {r.family} / seed {r.seed}"
            for reason in r.failures():
                lines.append(f"  {head}: {reason}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------

SMOKE_SIZE = 48
FULL_SIZE = 140
DEFAULT_CHAOS_PLAN = dict(crash=0.15, outage=0.08, fault_seed=1)


def default_fault_plan(seed: int = 1) -> FaultPlan:
    """The sweep's standard fault plan (crashes + outages, mild rates)."""
    return FaultPlan.machine_crashes(
        DEFAULT_CHAOS_PLAN["crash"], seed=seed
    ).compose(FaultPlan.server_outages(DEFAULT_CHAOS_PLAN["outage"], seed=seed))


def default_process_fault_plan(seed: int = 1) -> ProcessFaultPlan:
    """The sweep's standard real-process fault plan.

    10% of shard dispatches are SIGKILLed mid-task, 10% have their reply
    dropped (the worker hangs from the supervisor's point of view), and
    10% are delayed — each drawn independently, first attempt only, so
    the pool's retry path always converges.
    """
    return (
        ProcessFaultPlan.kills(0.1, seed=seed)
        | ProcessFaultPlan.hangs(0.1, seed=seed)
        | ProcessFaultPlan.delays(0.1, delay_s=0.02, seed=seed)
    )


def _run_cell(
    case: AlgorithmCase,
    family: str,
    n: int,
    seed: int,
    *,
    balance_slack: float,
    chaos: bool,
    vectorized: bool = False,
    backend: str = "serial",
    workers: int | None = None,
    process_faults: ProcessFaultPlan | None = None,
) -> CellRecord:
    workload = make_workload(case, family, n, seed)
    wn, wm = workload.size
    use_vectorized = vectorized and case.run_vectorized is not None
    run = case.run_vectorized if use_vectorized else case.run
    record = CellRecord(algorithm=case.name, family=family, seed=seed,
                        n=wn, m=wm, vectorized=use_vectorized,
                        backend=backend,
                        process_faults=process_faults is not None)
    # Real-process faults are armed ambiently for the primary run and
    # the determinism rerun; the serial twin below runs outside the
    # context, so the cross-backend oracle compares a fault-injected
    # process run against a fault-free serial run — the strongest form
    # of the bit-identity contract.
    def faulted():
        if process_faults is not None:
            return use_process_faults(process_faults)
        return contextlib.nullcontext()

    start = time.perf_counter()
    try:
        with faulted(), use_backend(backend, workers):
            with InvariantSuite(balance_slack=balance_slack) as suite:
                result = run(workload, seed)
        record.invariant_violations = [
            {"invariant": v.invariant, "message": v.message, "tag": v.tag}
            for v in suite.violations
        ]
        report = case.report_of(result)
        record.rounds = report.n_rounds if report is not None else None
        record.oracle_discrepancies = case.oracle(workload, result, seed)
        if case.cross_model is not None:
            record.cross_model_discrepancies = case.cross_model(
                workload, result, seed
            )

        # Seed-determinism: the same cell twice must agree bit for bit,
        # including the cost ledger (wall time excluded).
        rerun_workload = make_workload(case, family, n, seed)
        with faulted(), use_backend(backend, workers):
            rerun = run(rerun_workload, seed)
        record.deterministic = (
            case.digest(result) == case.digest(rerun)
            and _summary_without_walltime(report)
            == _summary_without_walltime(case.report_of(rerun))
        )

        # Cross-backend oracle: a process-backend cell must be
        # bit-identical to a serial twin — same results AND the same
        # cost ledger (wall time excluded).
        if backend != "serial":
            twin_workload = make_workload(case, family, n, seed)
            with use_backend("serial", None):
                twin = run(twin_workload, seed)
            record.backend_identical = (
                case.digest(result) == case.digest(twin)
                and _summary_without_walltime(report)
                == _summary_without_walltime(case.report_of(twin))
            )

        if chaos and case.chaos_run is not None:
            plan = default_fault_plan(DEFAULT_CHAOS_PLAN["fault_seed"] + seed)
            chaos_result = case.chaos_run(workload, seed, plan)
            record.chaos_identical = (
                case.digest(chaos_result) == case.digest(result)
            )
    except Exception:
        record.error = traceback.format_exc()
        record.status = "error"
        record.duration_s = time.perf_counter() - start
        return record
    record.duration_s = time.perf_counter() - start
    if record.failures():
        record.status = "fail"
    return record


def perf_smoke_cell(store_root: str | None = None) -> dict:
    """The ``perf-smoke`` cell of ``repro verify --smoke``.

    Exercises the whole perf-regression pipeline without a single
    flaky timing assertion: collect the smoke suite at tiny quick
    sizes, save it into a (temporary, unless ``store_root`` is given)
    profile store, pin it as the baseline, then ``check`` the profile
    against the just-written baseline. Identical samples must classify
    as no-change in every cell — a degradation here means the detectors
    themselves broke, not that the host got slower. The profile's JSONL
    records are also validated against the observe/export schema.

    Returns ``{"ok": bool, "cells": int, "problems": [str, ...]}``.
    """
    import tempfile

    from repro.observe.export import validate_records
    from repro.perf import ProfileStore, collect, compare_profiles

    problems: list[str] = []
    with contextlib.ExitStack() as stack:
        if store_root is None:
            store_root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-perf-smoke-")
            )
        profile = collect("smoke", repeats=3, warmup=1, quick=True,
                          label="verify-smoke")
        problems += [f"profile schema: {p}"
                     for p in validate_records(profile.to_records())]
        store = ProfileStore(store_root)
        profile_id = store.save(profile)
        store.set_baseline("smoke", profile_id, note="perf-smoke self-check")
        baseline = store.baseline_profile("smoke")
        candidate = store.load(profile_id)
        result = compare_profiles(baseline, candidate)
        for cell in result.cells:
            if cell.verdict != "no-change":
                problems.append(
                    f"self-check cell {cell.cell} classified "
                    f"{cell.verdict!r} against its own samples"
                )
        if not result.cells:
            problems.append("self-check compared zero cells")
        n_cells = len(result.cells)
    return {"ok": not problems, "cells": n_cells, "problems": problems}


def serve_smoke_cell() -> dict:
    """The serve cell of ``repro verify --smoke``.

    Builds a tiny resident engine (:class:`repro.serve.ServingEngine`,
    n = ``SMOKE_SIZE``), replays a 50-request mixed workload through the
    admission-controlled scheduler, then checks

    * **answers** against the sequential oracles: greedy LFMIS over the
      engine's π, BFS component labels, and the rooted forest's subtree
      sizes;
    * **ledgers**: per-request read/write deltas must reconcile exactly
      with the tick rows and the observe counters
      (:meth:`~repro.serve.ServingEngine.reconcile`);
    * **admission accounting**: a deliberately tiny queue must shed the
      overflow and every submitted request must be accounted accepted
      or rejected.

    Returns ``{"ok", "requests", "rejected", "problems"}``.
    """
    from repro.algorithms.mis import sequential_lfmis
    from repro.graph import generators, validation
    from repro.serve import (
        AdmissionControl, RequestScheduler, ServeRequest, ServingEngine,
        run_loadgen, workload_config,
    )

    problems: list[str] = []
    graph = generators.erdos_renyi_gnm(SMOKE_SIZE, 2 * SMOKE_SIZE, rng=0)
    engine = ServingEngine(graph, seed=0)
    cfg = workload_config("poisson-zipf", n_requests=50, seed=3)
    outcome = run_loadgen(engine, cfg)

    in_mis = sequential_lfmis(graph, engine.pi)
    labels = validation.components_reference(graph)
    if not validation.same_partition(engine.labels, labels):
        problems.append("engine component labels disagree with the BFS "
                        "reference partition")
    for resp in outcome.responses:
        req, got = resp.request, resp.value
        if req.kind == "mis_member":
            want = bool(in_mis[req.key])
        elif req.kind == "component_of":
            want = int(engine.labels[req.key])
        elif req.kind == "same_component":
            want = bool(labels[req.key] == labels[req.key2])
        else:
            want = int(engine.subtree_size[req.key])
        if got != want:
            problems.append(
                f"{req.kind}({req.key}) answered {got!r}, oracle says "
                f"{want!r}"
            )
    if len(outcome.responses) != cfg.n_requests:
        problems.append(
            f"served {len(outcome.responses)} of {cfg.n_requests} requests"
        )
    problems += outcome.reconcile_problems

    # Admission accounting: a queue of 4 against a burst of 20 must shed
    # exactly the overflow, and shed + served must cover every submit.
    tiny = RequestScheduler(engine, admission=AdmissionControl(
        max_queue=4, batch_window=4))
    submitted = 20
    admitted = sum(
        tiny.submit(ServeRequest("component_of", v % graph.n), now=0.0)
        for v in range(submitted)
    )
    tiny.drain(now=0.0)
    counts = tiny.counts()
    if counts["accepted"] != admitted or counts["accepted"] != 4:
        problems.append(f"admission accepted {counts['accepted']}, "
                        f"expected 4")
    if counts["rejected"] != submitted - 4:
        problems.append(f"admission rejected {counts['rejected']}, "
                        f"expected {submitted - 4}")
    if counts["completed"] != counts["accepted"] or counts["pending"]:
        problems.append(f"admission accounting leak: {counts}")
    problems += engine.reconcile()

    return {
        "ok": not problems,
        "requests": len(outcome.responses),
        "rejected": counts["rejected"],
        "problems": problems,
    }


def ingest_smoke_cell() -> dict:
    """The ingest cell of ``repro verify --smoke``.

    Round-trips a small ER graph through the full out-of-core ingestion
    pipeline — text edge list → binary edge cache → external-memory CSR
    build → :class:`repro.graph.csr.MmapGraph` — with a deliberately
    tiny ``chunk_edges`` so the chunked paths are actually exercised,
    then checks

    * **CSR parity**: the mmap ``indptr``/``indices`` must be
      bit-identical to ``Graph.from_edges`` on the same edges;
    * **result + ledger parity**: connectivity and MIS run from the
      mmap-backed graph (scalar and vectorized/array-native setup) must
      produce bit-identical labels/membership AND bit-identical
      per-round cost ledgers vs the in-memory baseline.

    Returns ``{"ok", "n", "m", "checks", "problems"}``.
    """
    import tempfile
    from pathlib import Path

    from repro.algorithms.connectivity import connectivity
    from repro.algorithms.mis import maximal_independent_set
    from repro.graph import csr, files, generators

    def _rows(report) -> list[tuple]:
        return [
            (s.tag, s.kind, s.rounds, s.total_reads, s.total_writes,
             s.max_machine_reads, s.max_machine_writes,
             s.n_machines_active, s.budget_violations, s.max_server_load)
            for s in report.rounds
        ]

    problems: list[str] = []
    checks = 0
    base = generators.erdos_renyi_gnm(SMOKE_SIZE, 2 * SMOKE_SIZE, rng=0)
    with tempfile.TemporaryDirectory(prefix="repro-ingest-smoke-") as tmp:
        text = Path(tmp) / "smoke.txt"
        files.write_edge_list(base, text)
        edges, n = files.load_edge_cache(text)
        if n != base.n or edges.shape[0] != base.m:
            problems.append(
                f"edge cache holds n={n} rows={edges.shape[0]}, "
                f"expected n={base.n} m={base.m}"
            )
        checks += 1
        mapped = csr.build_csr(edges, n, Path(tmp) / "csr", chunk_edges=97)
        if (
            mapped.n != base.n
            or not np.array_equal(np.asarray(mapped.indptr), base.indptr)
            or not np.array_equal(np.asarray(mapped.indices), base.indices)
        ):
            problems.append("mmap CSR arrays differ from Graph.from_edges")
        checks += 1
        for vectorized in (False, True):
            mode = "vectorized" if vectorized else "scalar"
            want = connectivity(base, seed=0, vectorized=vectorized)
            got = connectivity(mapped, seed=0, vectorized=vectorized)
            if (
                not np.array_equal(got.labels, want.labels)
                or got.n_components != want.n_components
            ):
                problems.append(f"{mode} connectivity labels differ on "
                                f"the mmap graph")
            if _rows(got.report) != _rows(want.report):
                problems.append(f"{mode} connectivity ledger differs on "
                                f"the mmap graph")
            checks += 2
            want_mis = maximal_independent_set(base, seed=0,
                                               vectorized=vectorized)
            got_mis = maximal_independent_set(mapped, seed=0,
                                              vectorized=vectorized)
            if not np.array_equal(got_mis.in_mis, want_mis.in_mis):
                problems.append(f"{mode} MIS membership differs on the "
                                f"mmap graph")
            if _rows(got_mis.report) != _rows(want_mis.report):
                problems.append(f"{mode} MIS ledger differs on the "
                                f"mmap graph")
            checks += 2

    return {
        "ok": not problems,
        "n": base.n,
        "m": base.m,
        "checks": checks,
        "problems": problems,
    }


def verify_sweep(
    *,
    algorithms: Iterable[str] | None = None,
    families: Iterable[str] | None = None,
    seeds: Iterable[int] | None = None,
    size: int | None = None,
    smoke: bool = False,
    chaos: bool = False,
    vectorized: bool = False,
    backend: str = "serial",
    workers: int | None = None,
    process_faults: bool = False,
    balance_slack: float = 4.0,
    progress: Callable[[CellRecord], None] | None = None,
) -> ConformanceReport:
    """Run the conformance sweep; see the module docstring.

    Args:
        algorithms: case names to run (default: every registered case).
        families: restrict to these generator families (cases keep only
            the intersection with their own compatibility list).
        seeds: seed matrix (default ``(0, 1)`` smoke / ``(0, 1, 2)`` full).
        size: target instance size n (defaults by mode).
        smoke: CI mode — small instances, two seeds.
        chaos: additionally replay chaos-capable cases under the default
            fault plan and require bit-identical answers.
        vectorized: run cases that register a ``run_vectorized`` variant
            on the batch execution engine instead of the scalar
            simulator; oracles, invariants, and the seed-determinism
            matrix apply unchanged (the batch path must satisfy the same
            contract). Cases without a vectorized variant run scalar.
        backend: execution backend for every cell (``"serial"`` or
            ``"process"``). With ``"process"``, each cell additionally
            runs a serial twin and requires bit-identical results and
            per-round ledgers (``backend_identical``).
        workers: worker count for the process backend (default:
            autodetect).
        process_faults: arm :func:`default_process_fault_plan` (seeded
            per cell) for every cell's primary run and determinism
            rerun — workers are really SIGKILLed, hung, and delayed —
            while the cross-backend serial twin stays fault-free. Only
            meaningful with ``backend="process"``; raises otherwise.
        balance_slack: constant factor granted over the Lemma 2.1 bound.
        progress: optional callback invoked with each finished cell.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {BACKENDS}")
    if process_faults and backend != "process":
        raise ValueError(
            "process_faults=True requires backend='process' — real-process "
            "fault injection has no process workers to target on the "
            f"{backend!r} backend"
        )
    wanted = list(algorithms) if algorithms else list(CASES)
    unknown = [name for name in wanted if name not in CASES]
    if unknown:
        raise ValueError(f"unknown algorithm(s): {unknown}; "
                         f"known: {sorted(CASES)}")
    family_filter = set(families) if families else None
    if family_filter:
        bad = family_filter - set(FAMILIES)
        if bad:
            raise ValueError(f"unknown families: {sorted(bad)}")
    n = size if size is not None else (SMOKE_SIZE if smoke else FULL_SIZE)
    seed_matrix = tuple(seeds) if seeds is not None else (
        (0, 1) if smoke else (0, 1, 2)
    )

    records: list[CellRecord] = []
    for name in wanted:
        case = CASES[name]
        case_families = [f for f in case.families
                         if family_filter is None or f in family_filter]
        for family in case_families:
            for seed in seed_matrix:
                record = _run_cell(
                    case, family, n, seed,
                    balance_slack=balance_slack, chaos=chaos,
                    vectorized=vectorized, backend=backend,
                    workers=workers,
                    process_faults=(
                        default_process_fault_plan(seed + 1)
                        if process_faults else None
                    ),
                )
                records.append(record)
                if progress is not None:
                    progress(record)

    settings = {
        "algorithms": wanted,
        "families": sorted(family_filter) if family_filter else "all",
        "seeds": list(seed_matrix),
        "size": n,
        "smoke": smoke,
        "chaos": chaos,
        "vectorized": vectorized,
        "backend": backend,
        "workers": workers,
        "process_faults": process_faults,
        "balance_slack": balance_slack,
    }
    return ConformanceReport(records=records, settings=settings)
