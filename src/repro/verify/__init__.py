"""Conformance harness for the AMPC reproduction.

Four cooperating pieces:

* :mod:`repro.verify.invariants` — runtime observers that watch every
  :class:`~repro.core.runtime.AMPCRuntime` round live and flag violations
  of the paper's §2 model contract (budgets, store sealing/adaptivity
  discipline, Lemma 2.1 balance, MPC message-passing restrictions).
* :mod:`repro.verify.oracles` — a registry of differential oracles pairing
  every algorithm with a sequential ground truth and (where one exists) an
  MPC baseline for cross-model equivalence.
* :mod:`repro.verify.strategies` — shared Hypothesis strategies over
  :mod:`repro.graph.generators` (imported lazily: requires ``hypothesis``).
* :mod:`repro.verify.runner` — the ``repro verify`` sweep driving
  algorithms × generator families × seeds under the observers, emitting a
  JSON conformance report.
"""

from .invariants import (
    BudgetObserver,
    InvariantSuite,
    InvariantViolation,
    InvariantViolationError,
    MPCDisciplineObserver,
    Observer,
    PartitionBalanceObserver,
    StoreDisciplineObserver,
    TraceObserver,
)
from .oracles import CASES, AlgorithmCase, Workload, case_names
from .runner import ConformanceReport, verify_sweep

# NOTE: repro.verify.strategies is deliberately not imported here — it
# requires the optional ``hypothesis`` package, which the library proper
# must not depend on. Import it directly from test code.

__all__ = [
    "AlgorithmCase",
    "BudgetObserver",
    "CASES",
    "ConformanceReport",
    "InvariantSuite",
    "InvariantViolation",
    "InvariantViolationError",
    "MPCDisciplineObserver",
    "Observer",
    "PartitionBalanceObserver",
    "StoreDisciplineObserver",
    "TraceObserver",
    "Workload",
    "case_names",
    "verify_sweep",
]
