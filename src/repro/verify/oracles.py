"""Differential oracles: every AMPC algorithm against a ground truth.

Each registered :class:`AlgorithmCase` binds one algorithm in
:mod:`repro.algorithms` to

* a **sequential oracle** — the single-threaded classic from
  :mod:`repro.baselines.seq` (union-find, Kruskal, Hopcroft–Tarjan, LF
  greedy sweeps, O(n) list walk) the distributed output must agree with;
* optionally a **cross-model check** — the MPC baseline
  (:mod:`repro.baselines`) whose answer the AMPC run must match, keeping
  the Figure 1 comparison apples-to-apples;
* a **digest** of the output, used by the seed-determinism matrix (two
  runs of the same cell must be bit-identical);
* the set of **generator families** (named in
  :data:`repro.verify.runner.FAMILIES`) the case accepts as workloads, and
  optionally a **chaos runner** executing the same computation on a
  fault-plan-armed runtime.

Oracle callables return a list of human-readable discrepancy strings —
empty means agreement. The conformance runner
(:mod:`repro.verify.runner`) sweeps the registry; tests reuse individual
entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import algorithms
from repro.baselines import seq
from repro.baselines.boruvka import boruvka_msf
from repro.baselines.label_propagation import label_propagation
from repro.baselines.pointer_doubling import mpc_list_ranking, mpc_two_cycle
from repro.core.chaos import FaultPlan, arm
from repro.core.config import AMPCConfig
from repro.core.cost import RunReport
from repro.core.runtime import AMPCRuntime
from repro.graph import generators, validation
from repro.graph.graph import Graph, WeightedGraph


@dataclass(frozen=True)
class Workload:
    """One generated input instance.

    Attributes:
        family: generator family name (see ``runner.FAMILIES``).
        kind: payload kind — "graph", "weighted", "succ", or "two_cycle".
        payload: the input object (Graph / WeightedGraph / successor array /
            ``(Graph, bool)`` for 2-Cycle instances).
        seed: the seed the instance was generated from.
        meta: extra ground-truth data the generator knows (e.g. the planted
            2-Cycle answer).
    """

    family: str
    kind: str
    payload: Any
    seed: int
    meta: dict = field(default_factory=dict)

    @property
    def size(self) -> tuple[int, int]:
        """(n, m) of the instance (m = 0 for successor arrays)."""
        obj = self.payload[0] if self.kind == "two_cycle" else self.payload
        if isinstance(obj, np.ndarray):
            return int(obj.size), 0
        return obj.n, obj.m


@dataclass(frozen=True)
class AlgorithmCase:
    """One algorithm's conformance contract.

    Attributes:
        name: registry key (also the CLI name).
        kind: workload kind the case consumes.
        families: compatible generator family names, in sweep order.
        run: ``run(workload, seed)`` → algorithm result.
        oracle: ``oracle(workload, result, seed)`` → discrepancy strings.
        digest: ``digest(result)`` → stable bytes identifying the output.
        report_of: extracts the :class:`RunReport` from a result.
        cross_model: optional ``(workload, result, seed)`` → discrepancies
            against the MPC baseline.
        chaos_run: optional ``(workload, seed, plan)`` → result computed
            under the fault plan (must match the fault-free digest).
        run_vectorized: optional ``(workload, seed)`` → result computed on
            the batch execution engine (``vectorized=True``). Must produce
            the same digest AND cost-ledger summary as :attr:`run`; the
            sweep's ``vectorized`` mode swaps it in for :attr:`run`.
    """

    name: str
    kind: str
    families: tuple[str, ...]
    run: Callable[[Workload, int], Any]
    oracle: Callable[[Workload, Any, int], list[str]]
    digest: Callable[[Any], bytes]
    report_of: Callable[[Any], RunReport | None]
    cross_model: Callable[[Workload, Any, int], list[str]] | None = None
    chaos_run: Callable[[Workload, int, FaultPlan], Any] | None = None
    run_vectorized: Callable[[Workload, int], Any] | None = None


CASES: dict[str, AlgorithmCase] = {}


def register(case: AlgorithmCase) -> AlgorithmCase:
    if case.name in CASES:
        raise ValueError(f"duplicate oracle case {case.name!r}")
    CASES[case.name] = case
    return case


def case_names() -> list[str]:
    """Registered algorithm names in registration order."""
    return list(CASES)


# ---------------------------------------------------------------------------
# validity helpers (shared with the metamorphic tests)
# ---------------------------------------------------------------------------


def mis_discrepancies(graph: Graph, in_mis: np.ndarray) -> list[str]:
    """Independence and maximality of a claimed MIS."""
    problems = []
    edges = graph.edges()
    if edges.size:
        both = in_mis[edges[:, 0]] & in_mis[edges[:, 1]]
        if both.any():
            problems.append(
                f"{int(both.sum())} edges have both endpoints in the MIS"
            )
    # Maximality: a vertex outside the set must have a neighbor inside.
    covered = in_mis.copy()
    if edges.size:
        np.logical_or.at(covered, edges[:, 0], in_mis[edges[:, 1]])
        np.logical_or.at(covered, edges[:, 1], in_mis[edges[:, 0]])
    missed = int((~covered).sum())
    if missed:
        problems.append(f"{missed} vertices are neither in the MIS nor "
                        f"adjacent to it")
    return problems


def matching_discrepancies(graph: Graph, edge_ids: np.ndarray) -> list[str]:
    """Disjointness and maximality of a claimed maximal matching."""
    problems = []
    edges = graph.edges()
    chosen = edges[edge_ids] if edge_ids.size else np.zeros((0, 2), np.int64)
    matched = np.zeros(graph.n, dtype=bool)
    endpoints, counts = np.unique(chosen, return_counts=True)
    if (counts > 1).any():
        problems.append("matching edges share endpoints")
    matched[endpoints] = True
    if edges.size:
        free = ~matched[edges[:, 0]] & ~matched[edges[:, 1]]
        if free.any():
            problems.append(
                f"{int(free.sum())} edges have both endpoints unmatched"
            )
    return problems


def coloring_discrepancies(graph: Graph, colors: np.ndarray) -> list[str]:
    """Propriety of a vertex coloring."""
    edges = graph.edges()
    if edges.size:
        clashes = int((colors[edges[:, 0]] == colors[edges[:, 1]]).sum())
        if clashes:
            return [f"{clashes} edges join same-colored vertices"]
    return []


def edge_coloring_discrepancies(
    graph: Graph, edge_colors: np.ndarray
) -> list[str]:
    """Propriety of an edge coloring (no two incident edges share color)."""
    edges = graph.edges()
    seen: set[tuple[int, int]] = set()
    clashes = 0
    for eid in range(edges.shape[0]):
        c = int(edge_colors[eid])
        for v in (int(edges[eid, 0]), int(edges[eid, 1])):
            if (v, c) in seen:
                clashes += 1
            seen.add((v, c))
    return [f"{clashes} incident edge pairs share a color"] if clashes else []


def partition_discrepancies(
    labels: np.ndarray, reference: np.ndarray, what: str
) -> list[str]:
    """Same-partition check (labels may differ by renaming)."""
    if not validation.same_partition(labels, reference):
        return [f"{what} labeling does not induce the reference partition"]
    return []


# ---------------------------------------------------------------------------
# digest / report helpers
# ---------------------------------------------------------------------------


def _arr_digest(*arrays: np.ndarray) -> bytes:
    parts = []
    for a in arrays:
        parts.append(np.ascontiguousarray(a).tobytes())
    return b"|".join(parts)


def _chaos_runtime(workload_size: int, seed: int, plan: FaultPlan):
    config = AMPCConfig.for_input(
        max(workload_size, 1), seed=seed, replication_factor=2
    )
    return arm(AMPCRuntime)(config, plan=plan)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

_GRAPH = ("er", "power-law", "grid", "tree", "forest", "cycles")


def _connectivity_oracle(w: Workload, res, seed: int) -> list[str]:
    reference = validation.components_reference(w.payload)
    problems = partition_discrepancies(res.labels, reference, "connectivity")
    # Labels are canonicalized to component minima, so equality is exact.
    if not np.array_equal(res.labels, reference):
        problems.append("labels are not canonical component minima")
    n_ref = int(np.unique(reference).size) if reference.size else 0
    if res.n_components != n_ref:
        problems.append(
            f"n_components {res.n_components} != reference {n_ref}"
        )
    return problems


def _connectivity_cross(w: Workload, res, seed: int) -> list[str]:
    mpc = label_propagation(w.payload, seed=seed)
    return partition_discrepancies(
        res.labels, mpc.labels, "AMPC-vs-MPC connectivity"
    )


register(AlgorithmCase(
    name="connectivity",
    kind="graph",
    families=_GRAPH,
    run=lambda w, seed: algorithms.connectivity(w.payload, seed=seed),
    oracle=_connectivity_oracle,
    digest=lambda res: _arr_digest(res.labels),
    report_of=lambda res: res.report,
    cross_model=_connectivity_cross,
    chaos_run=lambda w, seed, plan: algorithms.connectivity(
        w.payload,
        runtime=_chaos_runtime(w.payload.n + w.payload.m, seed, plan),
    ),
    run_vectorized=lambda w, seed: algorithms.connectivity(
        w.payload, seed=seed, vectorized=True
    ),
))


def _mis_oracle(w: Workload, res, seed: int) -> list[str]:
    graph = w.payload
    problems = mis_discrepancies(graph, res.in_mis)
    expected = seq.lfmis(graph, res.pi)
    if not np.array_equal(res.in_mis, expected):
        problems.append("MIS differs from sequential LFMIS for the same π")
    return problems


register(AlgorithmCase(
    name="mis",
    kind="graph",
    families=("er", "power-law", "grid", "forest"),
    run=lambda w, seed: algorithms.maximal_independent_set(
        w.payload, seed=seed
    ),
    run_vectorized=lambda w, seed: algorithms.maximal_independent_set(
        w.payload, seed=seed, vectorized=True
    ),
    oracle=_mis_oracle,
    digest=lambda res: _arr_digest(res.in_mis, res.pi),
    report_of=lambda res: res.report,
    chaos_run=lambda w, seed, plan: algorithms.maximal_independent_set(
        w.payload,
        runtime=_chaos_runtime(w.payload.n + w.payload.m, seed, plan),
    ),
))


def _matching_oracle(w: Workload, res, seed: int) -> list[str]:
    graph = w.payload
    problems = matching_discrepancies(graph, res.edge_ids)
    expected = algorithms.sequential_lfmm(graph, res.pi)
    if not np.array_equal(res.edge_ids, expected):
        problems.append(
            "matching differs from sequential LF matching for the same π"
        )
    return problems


register(AlgorithmCase(
    name="matching",
    kind="graph",
    families=("er", "power-law", "grid"),
    run=lambda w, seed: algorithms.maximal_matching(w.payload, seed=seed),
    oracle=_matching_oracle,
    digest=lambda res: _arr_digest(res.edge_ids),
    report_of=lambda res: res.report,
))


def _coloring_oracle(w: Workload, res, seed: int) -> list[str]:
    graph = w.payload
    problems = coloring_discrepancies(graph, res.colors)
    expected = algorithms.sequential_greedy_coloring(graph, res.pi)
    if not np.array_equal(res.colors, expected):
        problems.append(
            "coloring differs from the sequential LF greedy sweep for π"
        )
    return problems


register(AlgorithmCase(
    name="coloring",
    kind="graph",
    families=("er", "power-law", "grid"),
    run=lambda w, seed: algorithms.greedy_coloring(w.payload, seed=seed),
    oracle=_coloring_oracle,
    digest=lambda res: _arr_digest(res.colors),
    report_of=lambda res: res.report,
))


def _edge_coloring_oracle(w: Workload, res, seed: int) -> list[str]:
    graph = w.payload
    problems = edge_coloring_discrepancies(graph, res.colors)
    expected = algorithms.sequential_greedy_edge_coloring(graph, res.pi)
    if not np.array_equal(res.colors, expected):
        problems.append(
            "edge coloring differs from the sequential LF sweep for π"
        )
    return problems


register(AlgorithmCase(
    name="edge-coloring",
    kind="graph",
    families=("er", "power-law", "star"),
    run=lambda w, seed: algorithms.greedy_edge_coloring(w.payload, seed=seed),
    oracle=_edge_coloring_oracle,
    digest=lambda res: _arr_digest(res.colors),
    report_of=lambda res: res.report,
))


def _msf_oracle(w: Workload, res, seed: int) -> list[str]:
    wg: WeightedGraph = w.payload
    problems = []
    expected = seq.msf_edge_ids(wg)
    if not np.array_equal(res.edge_ids, expected):
        problems.append("MSF edge set differs from Kruskal")
    want_weight = float(wg.edge_weights()[expected].sum()) if expected.size else 0.0
    if not np.isclose(res.total_weight, want_weight):
        problems.append(
            f"MSF weight {res.total_weight} != Kruskal weight {want_weight}"
        )
    return problems


def _msf_cross(w: Workload, res, seed: int) -> list[str]:
    mpc = boruvka_msf(w.payload, seed=seed)
    if not np.array_equal(res.edge_ids, mpc.edge_ids):
        return ["AMPC MSF differs from Borůvka baseline"]
    return []


register(AlgorithmCase(
    name="msf",
    kind="weighted",
    families=("er", "power-law", "grid", "tree"),
    run=lambda w, seed: algorithms.minimum_spanning_forest(
        w.payload, seed=seed
    ),
    run_vectorized=lambda w, seed: algorithms.minimum_spanning_forest(
        w.payload, seed=seed, vectorized=True
    ),
    oracle=_msf_oracle,
    digest=lambda res: _arr_digest(res.edge_ids),
    report_of=lambda res: res.report,
    cross_model=_msf_cross,
))


def _affinity_oracle(w: Workload, res, seed: int) -> list[str]:
    expected = algorithms.sequential_affinity_levels(w.payload)
    problems = []
    if len(res.levels) != len(expected):
        problems.append(
            f"dendrogram depth {len(res.levels)} != sequential "
            f"{len(expected)}"
        )
    for lvl, (got, want) in enumerate(zip(res.levels, expected)):
        if not validation.same_partition(got, want):
            problems.append(f"level {lvl} clustering differs from sequential")
    return problems


register(AlgorithmCase(
    name="affinity",
    kind="weighted",
    families=("er", "grid", "tree"),
    run=lambda w, seed: algorithms.affinity_clustering(w.payload, seed=seed),
    oracle=_affinity_oracle,
    digest=lambda res: _arr_digest(*res.levels) if res.levels else b"empty",
    report_of=lambda res: res.report,
))


def _two_cycle_oracle(w: Workload, res, seed: int) -> list[str]:
    graph, is_two = w.payload
    problems = []
    if res.is_two_cycles != is_two:
        problems.append(
            f"answered {'two' if res.is_two_cycles else 'one'} but instance "
            f"is {'two' if is_two else 'one'}"
        )
    if res.n_cycles != seq.count_cycles(graph):
        problems.append(
            f"n_cycles {res.n_cycles} != reference "
            f"{seq.count_cycles(graph)}"
        )
    if sum(res.cycle_lengths) != graph.n:
        problems.append("cycle lengths do not cover all vertices")
    return problems


def _two_cycle_cross(w: Workload, res, seed: int) -> list[str]:
    graph, _ = w.payload
    mpc = mpc_two_cycle(graph, seed=seed)
    if mpc.is_two_cycles != res.is_two_cycles:
        return ["AMPC and MPC 2-Cycle answers disagree"]
    return []


register(AlgorithmCase(
    name="two-cycle",
    kind="two_cycle",
    families=("one-cycle-inst", "two-cycle-inst", "random-cycle-inst"),
    run=lambda w, seed: algorithms.two_cycle(w.payload[0], seed=seed),
    oracle=_two_cycle_oracle,
    digest=lambda res: (
        bytes([res.n_cycles % 251]) + repr(sorted(res.cycle_lengths)).encode()
    ),
    report_of=lambda res: res.report,
    cross_model=_two_cycle_cross,
))


def _cycle_cc_oracle(w: Workload, res, seed: int) -> list[str]:
    reference = validation.components_reference(w.payload)
    return partition_discrepancies(res.labels, reference, "cycle-connectivity")


register(AlgorithmCase(
    name="cycle-connectivity",
    kind="graph",
    families=("cycles", "one-cycle", "many-cycles"),
    run=lambda w, seed: algorithms.cycle_connectivity(w.payload, seed=seed),
    oracle=_cycle_cc_oracle,
    digest=lambda res: _arr_digest(res.labels),
    report_of=lambda res: res.report,
))


def _forest_cc_oracle(w: Workload, res, seed: int) -> list[str]:
    reference = validation.components_reference(w.payload)
    problems = partition_discrepancies(
        res.labels, reference, "forest-connectivity"
    )
    n_ref = int(np.unique(reference).size) if reference.size else 0
    if res.n_trees != n_ref:
        problems.append(f"n_trees {res.n_trees} != reference {n_ref}")
    return problems


register(AlgorithmCase(
    name="forest-connectivity",
    kind="graph",
    families=("tree", "forest", "path", "star"),
    run=lambda w, seed: algorithms.forest_connectivity(w.payload, seed=seed),
    oracle=_forest_cc_oracle,
    digest=lambda res: _arr_digest(res.labels),
    report_of=lambda res: res.report,
))


def _list_ranking_oracle(w: Workload, res, seed: int) -> list[str]:
    expected = seq.list_ranks(w.payload)
    if not np.array_equal(res.ranks, expected):
        return ["ranks differ from the sequential list walk"]
    return []


def _list_ranking_cross(w: Workload, res, seed: int) -> list[str]:
    mpc = mpc_list_ranking(w.payload, seed=seed)
    if not np.array_equal(res.ranks, mpc.ranks):
        return ["AMPC and MPC (Wyllie) list ranks disagree"]
    return []


register(AlgorithmCase(
    name="list-ranking",
    kind="succ",
    families=("list-uniform", "list-identity", "list-reversed"),
    run=lambda w, seed: algorithms.list_ranking(w.payload, seed=seed),
    oracle=_list_ranking_oracle,
    digest=lambda res: _arr_digest(res.ranks),
    report_of=lambda res: res.report,
    cross_model=_list_ranking_cross,
    run_vectorized=lambda w, seed: algorithms.list_ranking(
        w.payload, seed=seed, vectorized=True
    ),
))


def _tree_ops_oracle(w: Workload, res, seed: int) -> list[str]:
    graph: Graph = w.payload
    problems = []
    roots = set(res.roots.tolist())
    parent = res.parent
    # Orientation validity: parents are neighbors, chains reach roots.
    depth = np.zeros(graph.n, dtype=np.int64)
    for v in range(graph.n):
        p = int(parent[v])
        if v in roots:
            if p != v:
                problems.append(f"root {v} has parent {p}")
        elif not graph.has_edge(v, p):
            problems.append(f"parent of {v} is not a neighbor")
        x, hops = v, 0
        while parent[x] != x and hops <= graph.n:
            x = int(parent[x])
            hops += 1
        if parent[x] != x:
            problems.append(f"parent chain from {v} does not terminate")
        depth[v] = hops
        if problems:
            break
    if problems:
        return problems
    # Subtree sizes against the parent array itself.
    size = np.ones(graph.n, dtype=np.int64)
    for v in np.argsort(-depth):
        if parent[v] != v:
            size[parent[v]] += size[v]
    if not np.array_equal(res.subtree_size, size):
        problems.append("subtree sizes disagree with the parent array")
    if np.unique(res.preorder).size != graph.n:
        problems.append("preorder is not a permutation")
    return problems


register(AlgorithmCase(
    name="tree-ops",
    kind="graph",
    families=("tree", "forest", "path"),
    run=lambda w, seed: algorithms.root_forest(w.payload, seed=seed),
    oracle=_tree_ops_oracle,
    digest=lambda res: _arr_digest(res.parent, res.preorder, res.subtree_size),
    report_of=lambda res: res.report,
))


def _bc_oracle(w: Workload, res, seed: int) -> list[str]:
    graph: Graph = w.payload
    problems = []
    bridges_ref, artic_ref = seq.bridges_and_articulation(graph)
    got_bridges = {tuple(sorted(map(int, b))) for b in np.asarray(res.bridges).reshape(-1, 2)}
    want_bridges = {tuple(sorted(map(int, b))) for b in np.asarray(bridges_ref).reshape(-1, 2)}
    if got_bridges != want_bridges:
        problems.append(
            f"bridge set differs (got {len(got_bridges)}, "
            f"want {len(want_bridges)})"
        )
    got_artic = set(map(int, np.asarray(res.articulation_points).ravel()))
    want_artic = set(map(int, np.asarray(artic_ref).ravel()))
    if got_artic != want_artic:
        problems.append("articulation points differ from Hopcroft–Tarjan")
    return problems


register(AlgorithmCase(
    name="biconnectivity",
    kind="graph",
    families=("er", "grid", "tree"),
    run=lambda w, seed: algorithms.bc_labeling(w.payload, seed=seed),
    oracle=_bc_oracle,
    digest=lambda res: _arr_digest(
        np.asarray(res.bridges, dtype=np.int64).reshape(-1, 2),
        np.asarray(res.articulation_points, dtype=np.int64),
        np.asarray(res.two_edge_labels, dtype=np.int64),
    ),
    report_of=lambda res: res.report,
))
