"""Shared Hypothesis strategies over :mod:`repro.graph.generators`.

Every property test in the suite draws its inputs from here instead of
hand-rolling ``st.integers`` + generator calls, so coverage is uniform:
each strategy draws a *family*, a *size*, and a *seed* and builds the
instance deterministically through the repo's own generators. Shrinking
therefore walks toward small sizes and low seeds while staying inside the
generator's guarantees (connectivity class, degree bounds, distinct
weights, ...).

This module requires the optional ``hypothesis`` package and is
intentionally NOT imported by :mod:`repro.verify` itself — import it from
test code only.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.graph import Graph, WeightedGraph

__all__ = [
    "dds_keys",
    "dds_values",
    "float_arrays",
    "forests",
    "graphs",
    "id_arrays",
    "id_batches",
    "linked_lists",
    "permutations",
    "seeds",
    "trees",
    "two_cycle_instances",
    "weighted_batches",
    "weighted_graphs",
    "weighted_graphs_with_seed",
]


def seeds(max_seed: int = 10_000) -> st.SearchStrategy[int]:
    """Deployment / generator seeds (shrink toward 0)."""
    return st.integers(0, max_seed)


# -- graph families ---------------------------------------------------------


def _er(draw, n: int, seed: int) -> Graph:
    max_m = n * (n - 1) // 2
    m = draw(st.integers(0, min(3 * n, max_m)))
    return generators.erdos_renyi_gnm(n, m, seed)


def _power_law(draw, n: int, seed: int) -> Graph:
    n = max(n, 2)  # preferential attachment needs n > k >= 1
    k = draw(st.integers(1, min(4, n - 1)))
    return generators.barabasi_albert(n, k, seed)


def _grid(draw, n: int, seed: int) -> Graph:
    rows = draw(st.integers(1, max(1, int(np.sqrt(n)))))
    cols = max(1, n // rows)
    g, _ = generators.relabel(generators.grid(rows, cols), seed)
    return g


def _tree(draw, n: int, seed: int) -> Graph:
    return generators.random_tree(n, seed)


def _forest(draw, n: int, seed: int) -> Graph:
    n_trees = draw(st.integers(1, max(1, n // 2)))
    return generators.random_forest(n, n_trees, seed)


def _cycles(draw, n: int, seed: int) -> Graph:
    if n < 3:
        g, _ = generators.relabel(generators.path(max(n, 1)), seed)
        return g
    lengths = []
    left = n
    while left >= 3:
        k = draw(st.integers(3, left))
        if left - k in (1, 2):
            k = left
        lengths.append(k)
        left -= k
    g, _ = generators.relabel(generators.union_of_cycles(lengths), seed)
    return g


def _path(draw, n: int, seed: int) -> Graph:
    g, _ = generators.relabel(generators.path(n), seed)
    return g


def _star(draw, n: int, seed: int) -> Graph:
    g, _ = generators.relabel(generators.star(max(n, 2)), seed)
    return g


_FAMILY_BUILDERS = {
    "er": _er,
    "power-law": _power_law,
    "grid": _grid,
    "tree": _tree,
    "forest": _forest,
    "cycles": _cycles,
    "path": _path,
    "star": _star,
}


@st.composite
def graphs(
    draw,
    min_n: int = 1,
    max_n: int = 60,
    families: tuple[str, ...] = ("er", "power-law", "grid", "tree",
                                 "forest", "cycles", "path", "star"),
) -> Graph:
    """An undirected graph from one of the named generator families."""
    unknown = set(families) - set(_FAMILY_BUILDERS)
    if unknown:
        raise ValueError(f"unknown graph families: {sorted(unknown)}")
    family = draw(st.sampled_from(families))
    n = draw(st.integers(max(min_n, 1), max_n))
    seed = draw(seeds())
    return _FAMILY_BUILDERS[family](draw, n, seed)


@st.composite
def weighted_graphs(
    draw,
    min_n: int = 1,
    max_n: int = 60,
    families: tuple[str, ...] = ("er", "power-law", "grid", "tree",
                                 "forest", "cycles"),
) -> WeightedGraph:
    """A graph with distinct random edge weights (MSF/affinity inputs)."""
    g = draw(graphs(min_n=min_n, max_n=max_n, families=families))
    return generators.with_random_weights(g, draw(seeds()))


@st.composite
def weighted_graphs_with_seed(
    draw,
    min_n: int = 1,
    max_n: int = 60,
    families: tuple[str, ...] = ("er", "power-law", "grid", "tree",
                                 "forest", "cycles"),
) -> tuple[WeightedGraph, int]:
    """A weighted graph plus a deployment seed — the input of a full
    batch-vs-scalar MSF parity cell (the weighted twin of the pairing
    connectivity property tests draw)."""
    g = draw(weighted_graphs(min_n=min_n, max_n=max_n, families=families))
    return g, draw(seeds())


@st.composite
def weighted_batches(
    draw,
    min_size: int = 0,
    max_size: int = 256,
) -> tuple[str, np.ndarray, np.ndarray]:
    """A ``(namespace, ids, values)`` triple with multi-word float rows —
    the shape the flat weighted-graph encoding writes (``(nbr, weight,
    edge_id)`` per adjacency slot) — for ``write_array`` properties."""
    namespace = draw(st.sampled_from(["adjw", "deg", "fv", "msf"]))
    ids = draw(id_arrays(min_size=min_size, max_size=max_size))
    width = draw(st.integers(1, 3))
    rng = np.random.default_rng(draw(seeds()))
    nbr = rng.integers(0, 1 << 40, size=(ids.size, width)).astype(np.float64)
    nbr[:, min(1, width - 1)] = rng.standard_normal(ids.size)
    return namespace, ids, nbr if width > 1 else nbr[:, 0]


@st.composite
def trees(draw, min_n: int = 1, max_n: int = 60) -> Graph:
    """A single random tree."""
    n = draw(st.integers(max(min_n, 1), max_n))
    return generators.random_tree(n, draw(seeds()))


@st.composite
def forests(draw, min_n: int = 1, max_n: int = 60) -> Graph:
    """A random forest (possibly a single tree, possibly all singletons)."""
    n = draw(st.integers(max(min_n, 1), max_n))
    n_trees = draw(st.integers(1, max(1, n // 2)))
    return generators.random_forest(n, n_trees, draw(seeds()))


@st.composite
def linked_lists(draw, min_n: int = 1, max_n: int = 80) -> np.ndarray:
    """A successor array (``succ[tail] = -1``) with permuted element ids."""
    n = draw(st.integers(max(min_n, 1), max_n))
    return generators.linked_list(n, draw(seeds()))


@st.composite
def two_cycle_instances(
    draw, min_n: int = 6, max_n: int = 80
) -> tuple[Graph, bool]:
    """A 2-Cycle problem instance: ``(graph, is_two_cycles)``."""
    half = draw(st.integers(max(min_n, 6) // 2, max_n // 2))
    two = draw(st.booleans())
    return generators.two_cycle_instance(2 * half, two, draw(seeds()))


@st.composite
def permutations(draw, min_n: int = 1, max_n: int = 60) -> np.ndarray:
    """A permutation of 0..n-1 (vertex relabelings, priorities π)."""
    n = draw(st.integers(max(min_n, 1), max_n))
    return np.random.default_rng(draw(seeds())).permutation(n).astype(np.int64)


@st.composite
def float_arrays(
    draw,
    min_size: int = 1,
    max_size: int = 64,
    lo: float = -1e6,
    hi: float = 1e6,
) -> np.ndarray:
    """A finite float64 array (RMQ / prefix-sum / sorting inputs)."""
    values = draw(st.lists(
        st.floats(lo, hi, allow_nan=False, allow_infinity=False, width=64),
        min_size=min_size, max_size=max_size,
    ))
    return np.asarray(values, dtype=np.float64)


def dds_keys() -> st.SearchStrategy:
    """Keys as algorithms use them: scalars and small structured tuples."""
    scalar = st.one_of(
        st.integers(-1000, 1000),
        st.sampled_from(["a", "b", "deg", "label", "succ"]),
    )
    return st.one_of(scalar, st.tuples(scalar, st.integers(0, 8)))


@st.composite
def id_arrays(
    draw,
    min_size: int = 0,
    max_size: int = 256,
    lo: int = 0,
    hi: int = 1 << 40,
) -> np.ndarray:
    """An int64 id column for the batch DDS APIs (duplicates allowed).

    Ids span many orders of magnitude so the splitmix64 placement hash is
    exercised well past the small-key regime the graph algorithms use.
    """
    values = draw(st.lists(st.integers(lo, hi), min_size=min_size,
                           max_size=max_size))
    return np.asarray(values, dtype=np.int64)


@st.composite
def id_batches(
    draw,
    min_size: int = 0,
    max_size: int = 256,
) -> tuple[str, np.ndarray, np.ndarray]:
    """A ``(namespace, ids, values)`` triple for ``write_array``."""
    namespace = draw(st.sampled_from(["succ", "len", "val", "adj", "fedge"]))
    ids = draw(id_arrays(min_size=min_size, max_size=max_size))
    kind = draw(st.sampled_from(["int", "float"]))
    rng = np.random.default_rng(draw(seeds()))
    if kind == "int":
        values = rng.integers(-(1 << 30), 1 << 30, size=ids.size)
    else:
        values = rng.standard_normal(ids.size)
    return namespace, ids, values


def dds_values() -> st.SearchStrategy:
    """Constant-size values: scalars or short flat tuples."""
    scalar = st.one_of(
        st.integers(-10_000, 10_000),
        st.floats(-100, 100, allow_nan=False),
    )
    return st.one_of(scalar, st.tuples(scalar, scalar))
