"""Workload generators for the paper's experiments.

Every generator takes an explicit ``rng`` (numpy Generator) or ``seed`` so
workloads are reproducible; vertex ids can be shuffled (``relabel``) so
algorithms cannot exploit generator-friendly orderings — important for the
2-Cycle problem, where consecutive labels would make the instance trivial.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph, WeightedGraph


def _rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def relabel(graph: Graph, rng: np.random.Generator | int | None = None) -> tuple[Graph, np.ndarray]:
    """Randomly permute vertex ids; returns (graph', perm) with perm[old]=new."""
    gen = _rng(rng)
    perm = gen.permutation(graph.n).astype(np.int64)
    edges = graph.edges()
    new_edges = perm[edges]
    return Graph.from_edges(graph.n, new_edges), perm


# ---------------------------------------------------------------------------
# cycles, paths, lists (2-Cycle problem, forest connectivity, list ranking)
# ---------------------------------------------------------------------------

def cycle(n: int) -> Graph:
    """Single cycle 0-1-...-(n-1)-0. Requires n >= 3."""
    if n < 3:
        raise ValueError("a simple cycle needs n >= 3")
    v = np.arange(n, dtype=np.int64)
    edges = np.column_stack([v, (v + 1) % n])
    return Graph.from_edges(n, edges)


def path(n: int) -> Graph:
    """Simple path on n vertices (n - 1 edges)."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    v = np.arange(n - 1, dtype=np.int64)
    return Graph.from_edges(n, np.column_stack([v, v + 1]))


def union_of_cycles(lengths: list[int]) -> Graph:
    """Disjoint cycles with the given lengths (each >= 3)."""
    total = sum(lengths)
    chunks = []
    base = 0
    for k in lengths:
        if k < 3:
            raise ValueError("cycle lengths must be >= 3")
        v = base + np.arange(k, dtype=np.int64)
        chunks.append(np.column_stack([v, base + (np.arange(k) + 1) % k]))
        base += k
    return Graph.from_edges(total, np.concatenate(chunks, axis=0))


def two_cycle_instance(
    n: int, two: bool, rng: np.random.Generator | int | None = None
) -> tuple[Graph, bool]:
    """A 2-Cycle problem instance (paper §4): one n-cycle, or two n/2-cycles.

    Vertex labels are randomly permuted so the answer is not readable from
    the labeling. Returns (graph, is_two_cycles). ``n`` must be even, >= 6.
    """
    if n < 6 or n % 2:
        raise ValueError("2-Cycle instances need even n >= 6")
    base = union_of_cycles([n // 2, n // 2]) if two else cycle(n)
    g, _ = relabel(base, rng)
    return g, two


def random_two_cycle_instance(
    n: int, rng: np.random.Generator | int | None = None
) -> tuple[Graph, bool]:
    """Uniformly random one-or-two-cycle instance."""
    gen = _rng(rng)
    two = bool(gen.integers(0, 2))
    return two_cycle_instance(n, two, gen)


def linked_list(n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """A random successor array representing a list of n elements.

    Returns ``succ`` with ``succ[v]`` the next element and ``succ[tail] = -1``;
    element ids are a random permutation of 0..n-1 and the head is
    ``succ``'s unique non-successor (exposed via :func:`list_head`).
    """
    gen = _rng(rng)
    order = gen.permutation(n).astype(np.int64)
    succ = np.full(n, -1, dtype=np.int64)
    succ[order[:-1]] = order[1:]
    return succ


def list_head(succ: np.ndarray) -> int:
    """The unique element that is nobody's successor."""
    n = succ.size
    seen = np.zeros(n, dtype=bool)
    valid = succ[succ >= 0]
    seen[valid] = True
    heads = np.flatnonzero(~seen)
    if heads.size != 1:
        raise ValueError(f"not a single list: found {heads.size} heads")
    return int(heads[0])


# ---------------------------------------------------------------------------
# random graphs (connectivity, MIS, MSF workloads)
# ---------------------------------------------------------------------------

def erdos_renyi_gnm(
    n: int, m: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """G(n, m): m distinct uniform random edges (no self-loops)."""
    if m < 0 or m > n * (n - 1) // 2:
        raise ValueError(f"m={m} out of range for n={n}")
    gen = _rng(rng)
    edges: dict[tuple[int, int], None] = {}
    # Rejection sampling in batches: for the sparse regimes we use
    # (m << n^2) acceptance is near 1, so this is near-linear.
    while len(edges) < m:
        need = m - len(edges)
        batch = gen.integers(0, n, size=(max(need * 2, 16), 2))
        batch = batch[batch[:, 0] != batch[:, 1]]
        lo = np.minimum(batch[:, 0], batch[:, 1])
        hi = np.maximum(batch[:, 0], batch[:, 1])
        for u, v in zip(lo.tolist(), hi.tolist()):
            if len(edges) >= m:
                break
            edges[(u, v)] = None
    arr = np.array(list(edges.keys()), dtype=np.int64) if edges else np.zeros((0, 2), np.int64)
    return Graph.from_edges(n, arr)


def erdos_renyi_gnp(
    n: int, p: float, rng: np.random.Generator | int | None = None
) -> Graph:
    """G(n, p) via the expected edge count (sampled as G(n, m))."""
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    gen = _rng(rng)
    max_m = n * (n - 1) // 2
    m = int(gen.binomial(max_m, p)) if max_m else 0
    return erdos_renyi_gnm(n, m, gen)


def barabasi_albert(
    n: int, k: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """Preferential-attachment power-law graph: each new vertex attaches to
    k existing vertices chosen proportionally to degree.

    The skewed degree distribution stresses the per-machine query bounds
    (high-degree vertices make neighborhood exploration expensive).
    """
    if k < 1 or n <= k:
        raise ValueError("need n > k >= 1")
    gen = _rng(rng)
    targets = list(range(k))
    repeated: list[int] = list(range(k))
    edges: list[tuple[int, int]] = []
    for v in range(k, n):
        chosen = set()
        while len(chosen) < k:
            pick = repeated[int(gen.integers(0, len(repeated)))]
            chosen.add(pick)
        for t in chosen:
            edges.append((v, t))
            repeated.append(v)
            repeated.append(t)
    return Graph.from_edges(n, np.array(edges, dtype=np.int64))


def grid(rows: int, cols: int) -> Graph:
    """rows x cols 4-neighbor grid (diameter rows + cols - 2)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    vert = np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    return Graph.from_edges(rows * cols, np.concatenate([horiz, vert]))


def complete(n: int) -> Graph:
    """K_n."""
    u, v = np.triu_indices(n, k=1)
    return Graph.from_edges(n, np.column_stack([u, v]).astype(np.int64))


def star(n: int) -> Graph:
    """Star with center 0 and n-1 leaves."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    leaves = np.arange(1, n, dtype=np.int64)
    return Graph.from_edges(n, np.column_stack([np.zeros(n - 1, np.int64), leaves]))


def stochastic_block_model(
    sizes: list[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator | int | None = None,
) -> tuple[Graph, np.ndarray]:
    """Planted-partition graph: dense blocks, sparse cross-block edges.

    Returns (graph, block) where ``block[v]`` is v's planted community —
    ground truth for the clustering experiments (affinity clustering
    should recover blocks at intermediate dendrogram levels).
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError("need 0 <= p_out <= p_in <= 1")
    gen = _rng(rng)
    n = sum(sizes)
    block = np.repeat(np.arange(len(sizes)), sizes).astype(np.int64)
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            p = p_in if block[i] == block[j] else p_out
            if gen.random() < p:
                edges.append((i, j))
    arr = np.array(edges, np.int64) if edges else np.zeros((0, 2), np.int64)
    return Graph.from_edges(n, arr), block


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Small-world ring lattice with rewiring: high clustering, low
    diameter — a qualitatively different workload from ER/BA."""
    if k < 2 or k % 2 or k >= n:
        raise ValueError("k must be even, 2 <= k < n")
    if not (0.0 <= beta <= 1.0):
        raise ValueError("beta must be in [0, 1]")
    gen = _rng(rng)
    edges: set[tuple[int, int]] = set()
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            u = (v + offset) % n
            edges.add((min(v, u), max(v, u)))
    rewired: set[tuple[int, int]] = set()
    for (a, b) in sorted(edges):
        if gen.random() < beta:
            for _ in range(16):
                c = int(gen.integers(0, n))
                if c != a and (min(a, c), max(a, c)) not in edges \
                        and (min(a, c), max(a, c)) not in rewired:
                    rewired.add((min(a, c), max(a, c)))
                    break
            else:
                rewired.add((a, b))
        else:
            rewired.add((a, b))
    return Graph.from_edges(n, np.array(sorted(rewired), np.int64))


def bipartite_random(
    n_left: int,
    n_right: int,
    m: int,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Random bipartite graph (left ids 0..n_left-1, right ids after).

    Bipartite inputs exercise the 2-colorability path of the coloring
    extension and matching-heavy workloads.
    """
    total = n_left * n_right
    if m < 0 or m > total:
        raise ValueError(f"m={m} out of range")
    gen = _rng(rng)
    chosen = gen.choice(total, size=m, replace=False)
    left = (chosen // n_right).astype(np.int64)
    right = (chosen % n_right).astype(np.int64) + n_left
    return Graph.from_edges(n_left + n_right, np.column_stack([left, right]))


# ---------------------------------------------------------------------------
# RMAT / Kronecker (graph500 family — the scale workloads of the AMPC
# evaluation literature)
# ---------------------------------------------------------------------------

def rmat_edge_chunks(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | int | None = None,
    chunk_edges: int = 1 << 20,
):
    """Stream RMAT (recursive-matrix / graph500 Kronecker) edges.

    Yields ``(k, 2)`` int64 chunks totalling ``edge_factor * 2**scale``
    edges over ``2**scale`` vertices, never materializing the list: per
    chunk, every bit of both endpoints is drawn with one vectorized
    quadrant descent (probabilities ``a``/``b``/``c`` and
    ``d = 1-a-b-c``, graph500 defaults). The raw stream contains
    self-loops and duplicates, as the generator family specifies —
    downstream construction (``build_csr(..., drop_self_loops=True)``
    or :meth:`Graph.from_edges`) canonicalizes.

    Deterministic for a given ``rng`` seed and ``chunk_edges``.
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be >= 0 and sum <= 1")
    gen = _rng(rng)
    remaining = int(edge_factor) << scale
    step = max(1, int(chunk_edges))
    while remaining > 0:
        k = min(step, remaining)
        u = np.zeros(k, dtype=np.int64)
        v = np.zeros(k, dtype=np.int64)
        for _ in range(scale):
            r = gen.random(k)
            # quadrants: [0,a) -> (0,0); [a,a+b) -> (0,1);
            # [a+b,a+b+c) -> (1,0); rest -> (1,1)
            u_bit = r >= a + b
            v_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
            u = (u << 1) | u_bit
            v = (v << 1) | v_bit
        yield np.column_stack([u, v])
        remaining -= k


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """In-memory RMAT graph (small scales / tests): the streamed edge
    list with self-loops dropped and duplicates collapsed."""
    chunks = [
        chunk
        for chunk in rmat_edge_chunks(
            scale, edge_factor, a=a, b=b, c=c, rng=rng
        )
    ]
    edges = (
        np.concatenate(chunks) if chunks else np.zeros((0, 2), np.int64)
    )
    edges = edges[edges[:, 0] != edges[:, 1]]
    return Graph.from_edges(1 << scale, edges)


# ---------------------------------------------------------------------------
# trees and forests (forest connectivity, tree ops, 2-edge connectivity)
# ---------------------------------------------------------------------------

def random_tree(n: int, rng: np.random.Generator | int | None = None) -> Graph:
    """Uniform random recursive tree: vertex v attaches to a uniform u < v."""
    if n < 1:
        raise ValueError("tree needs n >= 1")
    gen = _rng(rng)
    if n == 1:
        return Graph.from_edges(1, np.zeros((0, 2), np.int64))
    parents = np.array([int(gen.integers(0, v)) for v in range(1, n)], dtype=np.int64)
    edges = np.column_stack([np.arange(1, n, dtype=np.int64), parents])
    return Graph.from_edges(n, edges)


def random_forest(
    n: int, n_trees: int, rng: np.random.Generator | int | None = None
) -> Graph:
    """Forest on n vertices with n_trees trees of near-equal random sizes."""
    if n_trees < 1 or n_trees > n:
        raise ValueError("need 1 <= n_trees <= n")
    gen = _rng(rng)
    # Random composition of n into n_trees positive parts.
    cuts = np.sort(gen.choice(np.arange(1, n), size=n_trees - 1, replace=False)) if n_trees > 1 else np.array([], dtype=np.int64)
    sizes = np.diff(np.concatenate([[0], cuts, [n]])).astype(int)
    chunks = []
    base = 0
    for size in sizes:
        t = random_tree(int(size), gen)
        if t.m:
            chunks.append(t.edges() + base)
        base += size
    all_edges = np.concatenate(chunks) if chunks else np.zeros((0, 2), np.int64)
    g = Graph.from_edges(n, all_edges)
    g2, _ = relabel(g, gen)
    return g2


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """Path of length ``spine`` with ``legs_per_vertex`` pendant leaves each."""
    n = spine + spine * legs_per_vertex
    edges = []
    for v in range(spine - 1):
        edges.append((v, v + 1))
    nxt = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((v, nxt))
            nxt += 1
    return Graph.from_edges(n, np.array(edges, dtype=np.int64))


# ---------------------------------------------------------------------------
# structured instances (diameter control, bridges)
# ---------------------------------------------------------------------------

def components_with_diameter(
    n_components: int,
    diameter: int,
    extra_edges_per_component: int = 0,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Disjoint components each containing a path of the given diameter.

    Used to separate the MPC O(log D · log log n) bound from the AMPC
    O(log log n) bound: the AMPC connectivity rounds should not grow with
    ``diameter`` while diameter-limited baselines do.
    """
    gen = _rng(rng)
    size = diameter + 1
    chunks = []
    base = 0
    for _ in range(n_components):
        v = base + np.arange(size - 1, dtype=np.int64)
        comp_edges = [np.column_stack([v, v + 1])]
        for _ in range(extra_edges_per_component):
            a, b = gen.integers(0, size, size=2)
            if a != b:
                comp_edges.append(np.array([[base + a, base + b]], dtype=np.int64))
        chunks.append(np.concatenate(comp_edges))
        base += size
    g = Graph.from_edges(base, np.concatenate(chunks))
    g2, _ = relabel(g, gen)
    return g2


def bridged_clusters(
    n_clusters: int,
    cluster_size: int,
    intra_edges: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[Graph, np.ndarray]:
    """Chain of dense clusters joined by single-edge bridges.

    Returns (graph, bridges) where ``bridges`` is the (n_clusters-1, 2)
    array of the planted bridge edges — ground truth for the 2-edge
    connectivity experiments.
    """
    if cluster_size < 3:
        raise ValueError("cluster_size must be >= 3 for 2-edge-connected clusters")
    gen = _rng(rng)
    edges = []
    n = n_clusters * cluster_size
    for c in range(n_clusters):
        base = c * cluster_size
        v = base + np.arange(cluster_size, dtype=np.int64)
        # A cycle makes the cluster 2-edge-connected...
        edges.append(np.column_stack([v, base + (np.arange(cluster_size) + 1) % cluster_size]))
        # ...plus random chords for density.
        for _ in range(intra_edges):
            a, b = gen.integers(0, cluster_size, size=2)
            if a != b:
                edges.append(np.array([[base + a, base + b]], dtype=np.int64))
    bridges = []
    for c in range(n_clusters - 1):
        u = c * cluster_size + int(gen.integers(0, cluster_size))
        v = (c + 1) * cluster_size + int(gen.integers(0, cluster_size))
        bridges.append((u, v))
        edges.append(np.array([[u, v]], dtype=np.int64))
    g = Graph.from_edges(n, np.concatenate(edges))
    return g, np.array(bridges, dtype=np.int64)


def disjoint_union(graphs: list[Graph]) -> Graph:
    """Disjoint union with consecutive id blocks."""
    n = sum(g.n for g in graphs)
    chunks = []
    base = 0
    for g in graphs:
        if g.m:
            chunks.append(g.edges() + base)
        base += g.n
    edges = np.concatenate(chunks) if chunks else np.zeros((0, 2), np.int64)
    return Graph.from_edges(n, edges)


# ---------------------------------------------------------------------------
# weights
# ---------------------------------------------------------------------------

def with_random_weights(
    graph: Graph, rng: np.random.Generator | int | None = None
) -> WeightedGraph:
    """Attach distinct uniform random weights to every edge (paper §7
    assumes distinct weights so the MSF is unique)."""
    gen = _rng(rng)
    edges = graph.edges()
    m = edges.shape[0]
    # Distinct by construction: a random permutation plus tiny jitter.
    weights = gen.permutation(m).astype(np.float64) + gen.random(m) * 0.5
    return WeightedGraph.from_weighted_edges(graph.n, edges, weights)


def with_distinct_integer_weights(
    graph: Graph, rng: np.random.Generator | int | None = None
) -> WeightedGraph:
    """Attach a random permutation of 0..m-1 as integer-valued weights."""
    gen = _rng(rng)
    edges = graph.edges()
    weights = gen.permutation(edges.shape[0]).astype(np.float64)
    return WeightedGraph.from_weighted_edges(graph.n, edges, weights)
