"""Plain-text graph file formats: edge lists, with optional weights.

A small, dependency-free interchange layer so the CLI and downstream
users can feed real graphs in:

* **edge list** — one edge per line, ``u v`` or ``u v weight``;
  ``#``-prefixed comment lines and blank lines ignored (the format of
  SNAP datasets and most published edge lists);
* an optional header comment ``# nodes: N`` pins the vertex count
  (otherwise it is 1 + the largest endpoint seen).

Vertex ids must be non-negative integers; they are used as-is (no
re-mapping), matching the library's 0..n-1 vertex convention.

Two reading speeds share one contract:

* the **fast path** (:func:`scan_edge_list`) parses raw byte blocks with
  ``np.frombuffer`` — byte-class histogram, token-count cumsum sampled
  at newlines, C-tokenizer value parse, no per-line Python — and
  streams bounded ``(k, 2)`` chunks. It handles
  the common shape (leading comments, two integer columns); anything
  else (weights, mid-file comments, negative ids, huge tokens) raises
  :class:`FastParseUnsupported` and the caller restarts on
* the **slow path** — the original per-line parser, kept verbatim so
  every error message and edge case (including the ``# nodes:`` header
  semantics) is unchanged.

:func:`build_edge_cache` adds a write-once binary cache next to the
text file (``<name>.edges.npy`` + ``<name>.edges.json`` fingerprint),
so repeated ingestion runs memory-map parsed edges instead of
re-parsing text.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Iterator, TextIO

import numpy as np

from .graph import Graph, WeightedGraph

FAST_BLOCK_BYTES = 1 << 22
CACHE_VERSION = 1


class FastParseUnsupported(Exception):
    """The byte-level fast path cannot represent this file; use the
    per-line parser (weighted columns, mid-file comments, signs, ...)."""


def read_edge_list(source: str | Path | TextIO) -> Graph:
    """Read an unweighted graph from an edge-list file or file object.

    Weighted lines are accepted (the weight column is ignored); use
    :func:`read_weighted_edge_list` to keep the weights.

    File paths take the chunked ``np.frombuffer`` fast path and fall
    back to the per-line parser (identical results and error messages)
    when the file is weighted or otherwise irregular.
    """
    if isinstance(source, (str, Path)):
        try:
            edges, n = _collect_fast(source)
        except FastParseUnsupported:
            pass
        else:
            return Graph.from_edges(n, edges)
    edges, _weights, n = _parse(source, want_weights=False)
    return Graph.from_edges(n, edges)


def read_weighted_edge_list(source: str | Path | TextIO) -> WeightedGraph:
    """Read a weighted graph; every line must carry a weight column."""
    edges, weights, n = _parse(source, want_weights=True)
    return WeightedGraph.from_weighted_edges(n, edges, weights)


def write_edge_list(graph: Graph, target: str | Path | TextIO) -> None:
    """Write a graph as an edge list (with weights for WeightedGraph)."""
    own, handle = _open(target, "w")
    try:
        handle.write(f"# nodes: {graph.n}\n")
        if isinstance(graph, WeightedGraph):
            weights = graph.edge_weights()
            for eid, (u, v) in enumerate(graph.edge_list()):
                handle.write(f"{u} {v} {float(weights[eid])!r}\n")
        else:
            for u, v in graph.edges():
                handle.write(f"{u} {v}\n")
    finally:
        if own:
            handle.close()


def _open(source, mode: str) -> tuple[bool, TextIO]:
    if isinstance(source, (str, Path)):
        return True, open(source, mode, encoding="utf-8")
    return False, source


def _parse(source, *, want_weights: bool):
    own, handle = _open(source, "r")
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    declared_n: int | None = None
    max_id = -1
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip().lower()
                if body.startswith("nodes:"):
                    declared_n = int(body.split(":", 1)[1])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected 'u v [w]': {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"line {lineno}: negative vertex id")
            if want_weights:
                if len(parts) < 3:
                    raise ValueError(
                        f"line {lineno}: weighted read needs a weight column"
                    )
                weights.append(float(parts[2]))
            edges.append((u, v))
            max_id = max(max_id, u, v)
    finally:
        if own:
            handle.close()
    n = declared_n if declared_n is not None else max_id + 1
    if max_id >= n:
        raise ValueError(
            f"declared nodes: {n} but saw vertex id {max_id}"
        )
    edge_arr = (np.array(edges, dtype=np.int64)
                if edges else np.zeros((0, 2), np.int64))
    weight_arr = np.array(weights, dtype=np.float64)
    return edge_arr, weight_arr, max(n, 0)


# -- chunked np.frombuffer fast path ---------------------------------------

_NEWLINE = 10


def _parse_block(data: bytes) -> np.ndarray:
    """Vectorized parse of whole lines: ``(k, 2)`` int64 edges.

    ``data`` must end on a line boundary. Only digits and whitespace
    separators may appear; every line must carry exactly two integer
    tokens — anything else raises :class:`FastParseUnsupported`.

    Validation is byte-level numpy (digit/separator masks; tokens
    counted per line by binary-searching token starts against newline
    positions); the values themselves come from ``np.fromstring``'s C
    tokenizer, which keeps full int64 precision. Tokens are capped at
    18 digits so the C parse can never saturate silently (10^18 <
    2^63).
    """
    b = np.frombuffer(data, dtype=np.uint8)
    if b.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if b[-1] != _NEWLINE:
        raise FastParseUnsupported("block not newline-terminated")
    digit = (b >= ord("0")) & (b <= ord("9"))
    separator = (b == 32) | (b == 9) | (b == 13) | (b == _NEWLINE)
    if not np.all(digit | separator):
        raise FastParseUnsupported("non-numeric byte")
    starts = digit.copy()
    starts[1:] &= ~digit[:-1]
    start_pos = np.flatnonzero(starts)
    if start_pos.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    newlines = np.flatnonzero(b == _NEWLINE)
    # Exactly two tokens on every non-blank line (a third column would
    # be a weight the slow path ignores — mispairing hazard).
    per_line = np.diff(np.searchsorted(start_pos, newlines),
                       prepend=np.int64(0))
    if np.any((per_line != 2) & (per_line != 0)):
        raise FastParseUnsupported("tokens per line != 2")
    # Token-length cap: a two-token line of <= 21 bytes (newline
    # included) cannot hold a token over 18 digits; only longer lines
    # need the per-run scan.
    if int(np.diff(newlines, prepend=np.int64(-1)).max()) > 21:
        ends = digit.copy()
        ends[:-1] &= ~digit[1:]
        lengths = np.flatnonzero(ends) - start_pos
        if int(lengths.max()) >= 18:
            raise FastParseUnsupported("token too long for int64")
    values = np.fromstring(data, dtype=np.int64, sep=" ")
    if values.size != start_pos.size:
        raise FastParseUnsupported("token count mismatch")
    return values.reshape(-1, 2)


def _scan_header(handle) -> tuple[int | None, int]:
    """Consume leading comment/blank lines of a binary handle.

    Returns ``(declared_n, data_offset)`` — the ``# nodes:`` value if
    present, and the byte offset of the first data line.
    """
    declared_n: int | None = None
    offset = 0
    while True:
        line = handle.readline()
        if not line:
            return declared_n, offset
        stripped = line.strip()
        if stripped and not stripped.startswith(b"#"):
            return declared_n, offset
        if stripped.startswith(b"#"):
            body = stripped[1:].strip().lower()
            if body.startswith(b"nodes:"):
                try:
                    declared_n = int(body.split(b":", 1)[1])
                except ValueError as err:
                    # Let the slow path raise its own int() error.
                    raise FastParseUnsupported("bad nodes header") from err
        offset = handle.tell()


def scan_edge_list(
    path: str | Path, *, block_bytes: int = FAST_BLOCK_BYTES
) -> tuple[int | None, Iterator[np.ndarray]]:
    """Stream an edge-list file as bounded ``(k, 2)`` int64 chunks.

    Returns ``(declared_n, chunk_iterator)``; ``declared_n`` is the
    ``# nodes:`` header value or None. The iterator (and this call)
    raise :class:`FastParseUnsupported` for files the byte-level parser
    cannot handle — callers restart with the per-line reader.
    """
    with open(path, "rb") as handle:
        declared_n, offset = _scan_header(handle)

    def _chunks() -> Iterator[np.ndarray]:
        with open(path, "rb") as handle:
            handle.seek(offset)
            carry = b""
            while True:
                block = handle.read(block_bytes)
                if not block:
                    break
                block = carry + block
                cut = block.rfind(b"\n")
                if cut < 0:
                    carry = block
                    continue
                carry = block[cut + 1 :]
                edges = _parse_block(block[: cut + 1])
                if edges.size:
                    yield edges
            if carry.strip():
                edges = _parse_block(carry + b"\n")
                if edges.size:
                    yield edges

    return declared_n, _chunks()


def resolve_node_count(declared_n: int | None, max_id: int) -> int:
    """The slow path's vertex-count rule, shared by the fast path."""
    n = declared_n if declared_n is not None else max_id + 1
    if max_id >= n:
        raise ValueError(f"declared nodes: {n} but saw vertex id {max_id}")
    return max(n, 0)


def _collect_fast(path: str | Path) -> tuple[np.ndarray, int]:
    """Fast-path read of a whole file: ``(edges, n)``."""
    declared_n, chunks = scan_edge_list(path)
    parts = list(chunks)
    edges = (
        np.concatenate(parts) if parts else np.zeros((0, 2), np.int64)
    )
    max_id = int(edges.max()) if edges.size else -1
    return edges, resolve_node_count(declared_n, max_id)


# -- write-once binary edge cache ------------------------------------------


def edge_cache_paths(path: str | Path) -> tuple[Path, Path]:
    """``(<name>.edges.npy, <name>.edges.json)`` next to the text file."""
    p = Path(path)
    return (
        p.with_name(p.name + ".edges.npy"),
        p.with_name(p.name + ".edges.json"),
    )


def _cache_fingerprint(path: Path) -> dict:
    stat = path.stat()
    return {"source_bytes": stat.st_size, "source_mtime_ns": stat.st_mtime_ns}


def cache_valid(path: str | Path) -> bool:
    """Whether a current binary cache exists for this text file."""
    source = Path(path)
    npy_path, meta_path = edge_cache_paths(source)
    if not (npy_path.is_file() and meta_path.is_file()):
        return False
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return (
        meta.get("version") == CACHE_VERSION
        and {k: meta.get(k) for k in ("source_bytes", "source_mtime_ns")}
        == _cache_fingerprint(source)
    )


def build_edge_cache(
    path: str | Path, *, block_bytes: int = FAST_BLOCK_BYTES
) -> tuple[Path, int]:
    """Parse a text edge list once into ``<name>.edges.npy``.

    Write-once: if a cache with a matching source fingerprint exists it
    is reused untouched. The fast path streams chunks through a raw
    spool (RAM stays O(block)); fallback files are parsed per-line in
    memory. Returns ``(npy_path, n)``.
    """
    source = Path(path)
    npy_path, meta_path = edge_cache_paths(source)
    if cache_valid(source):
        return npy_path, int(json.loads(meta_path.read_text())["n"])

    spool_path = npy_path.with_suffix(".spool")
    rows = 0
    max_id = -1
    try:
        try:
            declared_n, chunks = scan_edge_list(
                source, block_bytes=block_bytes
            )
            with open(spool_path, "wb") as spool:
                for chunk in chunks:
                    spool.write(np.ascontiguousarray(chunk).tobytes())
                    rows += chunk.shape[0]
                    max_id = max(max_id, int(chunk.max()))
            n = resolve_node_count(declared_n, max_id)
            out = np.lib.format.open_memmap(
                npy_path, mode="w+", dtype=np.int64, shape=(rows, 2)
            )
            if rows:
                spool = np.memmap(
                    spool_path, dtype=np.int64, mode="r"
                ).reshape(-1, 2)
                step = max(1, block_bytes // 16)
                for lo in range(0, rows, step):
                    hi = min(rows, lo + step)
                    out[lo:hi] = spool[lo:hi]
                del spool
            out.flush()
            del out
        except FastParseUnsupported:
            edges, _weights, n = _parse(source, want_weights=False)
            rows = edges.shape[0]
            np.save(npy_path, edges)
    finally:
        try:
            os.unlink(spool_path)
        except FileNotFoundError:
            pass
    meta = {
        "version": CACHE_VERSION,
        "n": int(n),
        "rows": int(rows),
        **_cache_fingerprint(source),
    }
    meta_path.write_text(json.dumps(meta))
    return npy_path, int(n)


def load_edge_cache(path: str | Path) -> tuple[np.ndarray, int]:
    """Memory-mapped ``(edges, n)`` for a text edge list, building the
    binary cache on first use."""
    npy_path, meta_path = edge_cache_paths(path)
    if not cache_valid(path):
        build_edge_cache(path)
    n = int(json.loads(meta_path.read_text())["n"])
    edges = np.load(npy_path, mmap_mode="r")
    return edges, n


def loads(text: str) -> Graph:
    """Parse an edge list from a string (testing convenience)."""
    return read_edge_list(io.StringIO(text))


def loads_weighted(text: str) -> WeightedGraph:
    """Parse a weighted edge list from a string."""
    return read_weighted_edge_list(io.StringIO(text))
