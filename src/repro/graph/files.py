"""Plain-text graph file formats: edge lists, with optional weights.

A small, dependency-free interchange layer so the CLI and downstream
users can feed real graphs in:

* **edge list** — one edge per line, ``u v`` or ``u v weight``;
  ``#``-prefixed comment lines and blank lines ignored (the format of
  SNAP datasets and most published edge lists);
* an optional header comment ``# nodes: N`` pins the vertex count
  (otherwise it is 1 + the largest endpoint seen).

Vertex ids must be non-negative integers; they are used as-is (no
re-mapping), matching the library's 0..n-1 vertex convention.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from .graph import Graph, WeightedGraph


def read_edge_list(source: str | Path | TextIO) -> Graph:
    """Read an unweighted graph from an edge-list file or file object.

    Weighted lines are accepted (the weight column is ignored); use
    :func:`read_weighted_edge_list` to keep the weights.
    """
    edges, _weights, n = _parse(source, want_weights=False)
    return Graph.from_edges(n, edges)


def read_weighted_edge_list(source: str | Path | TextIO) -> WeightedGraph:
    """Read a weighted graph; every line must carry a weight column."""
    edges, weights, n = _parse(source, want_weights=True)
    return WeightedGraph.from_weighted_edges(n, edges, weights)


def write_edge_list(graph: Graph, target: str | Path | TextIO) -> None:
    """Write a graph as an edge list (with weights for WeightedGraph)."""
    own, handle = _open(target, "w")
    try:
        handle.write(f"# nodes: {graph.n}\n")
        if isinstance(graph, WeightedGraph):
            weights = graph.edge_weights()
            for eid, (u, v) in enumerate(graph.edge_list()):
                handle.write(f"{u} {v} {float(weights[eid])!r}\n")
        else:
            for u, v in graph.edges():
                handle.write(f"{u} {v}\n")
    finally:
        if own:
            handle.close()


def _open(source, mode: str) -> tuple[bool, TextIO]:
    if isinstance(source, (str, Path)):
        return True, open(source, mode, encoding="utf-8")
    return False, source


def _parse(source, *, want_weights: bool):
    own, handle = _open(source, "r")
    edges: list[tuple[int, int]] = []
    weights: list[float] = []
    declared_n: int | None = None
    max_id = -1
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip().lower()
                if body.startswith("nodes:"):
                    declared_n = int(body.split(":", 1)[1])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"line {lineno}: expected 'u v [w]': {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u < 0 or v < 0:
                raise ValueError(f"line {lineno}: negative vertex id")
            if want_weights:
                if len(parts) < 3:
                    raise ValueError(
                        f"line {lineno}: weighted read needs a weight column"
                    )
                weights.append(float(parts[2]))
            edges.append((u, v))
            max_id = max(max_id, u, v)
    finally:
        if own:
            handle.close()
    n = declared_n if declared_n is not None else max_id + 1
    if max_id >= n:
        raise ValueError(
            f"declared nodes: {n} but saw vertex id {max_id}"
        )
    edge_arr = (np.array(edges, dtype=np.int64)
                if edges else np.zeros((0, 2), np.int64))
    weight_arr = np.array(weights, dtype=np.float64)
    return edge_arr, weight_arr, max(n, 0)


def loads(text: str) -> Graph:
    """Parse an edge list from a string (testing convenience)."""
    return read_edge_list(io.StringIO(text))


def loads_weighted(text: str) -> WeightedGraph:
    """Parse a weighted edge list from a string."""
    return read_weighted_edge_list(io.StringIO(text))
