"""Structural validators used by tests and defensive checks in drivers."""

from __future__ import annotations

import numpy as np

from .graph import Graph


def check_csr(graph: Graph) -> None:
    """Assert CSR invariants: monotone indptr, sorted rows, symmetry, no
    self-loops, no duplicate neighbors. Raises AssertionError on violation."""
    indptr, indices = graph.indptr, graph.indices
    assert indptr.shape == (graph.n + 1,), "indptr length must be n+1"
    assert indptr[0] == 0 and indptr[-1] == indices.size, "indptr bounds"
    assert np.all(np.diff(indptr) >= 0), "indptr must be non-decreasing"
    if indices.size:
        assert indices.min() >= 0 and indices.max() < graph.n, "index range"
    for v in range(graph.n):
        row = graph.neighbors(v)
        assert np.all(np.diff(row) > 0), f"row {v} not strictly sorted"
        assert not np.any(row == v), f"self-loop at {v}"
    # Symmetry: edge (u, v) implies (v, u).
    degs = graph.degrees
    src = np.repeat(np.arange(graph.n, dtype=np.int64), degs)
    fwd = {(int(a), int(b)) for a, b in zip(src, indices)}
    for a, b in fwd:
        assert (b, a) in fwd, f"asymmetric edge ({a}, {b})"


def is_union_of_cycles(graph: Graph) -> bool:
    """True iff every vertex has degree exactly 2 (disjoint simple cycles)."""
    return graph.n > 0 and bool(np.all(graph.degrees == 2))


def is_forest(graph: Graph) -> bool:
    """True iff the graph is acyclic (m = n - #components)."""
    return graph.m == graph.n - count_components(graph)


def count_components(graph: Graph) -> int:
    """Number of connected components (sequential union-find reference)."""
    parent = np.arange(graph.n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for u, v in graph.edges():
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
    return len({find(v) for v in range(graph.n)})


def components_reference(graph: Graph) -> np.ndarray:
    """Component label per vertex: the minimum vertex id in its component.

    The sequential ground truth every connectivity algorithm is tested
    against.
    """
    parent = np.arange(graph.n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for u, v in graph.edges():
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    labels = np.empty(graph.n, dtype=np.int64)
    for v in range(graph.n):
        labels[v] = find(v)
    return labels


def same_partition(labels_a: np.ndarray, labels_b: np.ndarray) -> bool:
    """True iff two labelings induce the same partition of vertices."""
    if labels_a.shape != labels_b.shape:
        return False
    mapping: dict[int, int] = {}
    reverse: dict[int, int] = {}
    for a, b in zip(labels_a.tolist(), labels_b.tolist()):
        if mapping.setdefault(a, b) != b:
            return False
        if reverse.setdefault(b, a) != a:
            return False
    return True
