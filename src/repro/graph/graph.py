"""Graph containers used across the library.

Graphs are immutable CSR (compressed sparse row) structures over numpy
arrays: ``indptr`` of length n+1 and ``indices`` of length 2m, with both
directions of every undirected edge stored so neighborhood access is a
contiguous slice — the memory-friendly layout the HPC guides recommend
(views, not copies; contiguous access).

Vertices are integers 0..n-1 (paper §3). Self-loops and duplicate edges are
rejected at construction, matching the paper's assumption.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class Graph:
    """Immutable undirected graph in CSR form.

    Construct via :meth:`from_edges` (validating) or :meth:`from_csr`
    (trusting, for internal fast paths).
    """

    __slots__ = ("n", "indptr", "indices", "_m")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.n = int(n)
        self.indptr = indptr
        self.indices = indices
        self._m = int(indices.size // 2)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]] | np.ndarray) -> "Graph":
        """Build a graph from an edge list.

        Self-loops are rejected; duplicate edges (in either orientation) are
        collapsed. Endpoints must lie in [0, n).
        """
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                         dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edges must be (m, 2), got shape {arr.shape}")
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise ValueError("edge endpoint out of range [0, n)")
        if arr.size and np.any(arr[:, 0] == arr[:, 1]):
            raise ValueError("self-loops are not allowed (paper §3)")
        arr = canonical_edges(arr)
        return cls._from_canonical(n, arr)

    @classmethod
    def _from_canonical(cls, n: int, arr: np.ndarray) -> "Graph":
        """Build from deduplicated u<v edges (internal)."""
        both = np.concatenate([arr, arr[:, ::-1]], axis=0) if arr.size else arr
        order = np.lexsort((both[:, 1], both[:, 0])) if both.size else np.array([], dtype=np.int64)
        both = both[order] if both.size else both.reshape(0, 2)
        indptr = np.zeros(n + 1, dtype=np.int64)
        if both.size:
            np.add.at(indptr, both[:, 0] + 1, 1)
        np.cumsum(indptr, out=indptr)
        indices = both[:, 1].copy() if both.size else np.zeros(0, dtype=np.int64)
        return cls(n, indptr, indices)

    @classmethod
    def from_csr(cls, n: int, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Wrap existing CSR arrays without validation (fast path)."""
        return cls(n, indptr, indices)

    # -- accessors ----------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._m

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        """Degree array (fresh, length n)."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of v (a view — do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < nbrs.size and nbrs[i] == v)

    def edges(self) -> np.ndarray:
        """(m, 2) array of edges with u < v, lexicographically sorted."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def edge_iter(self) -> Iterator[tuple[int, int]]:
        for u, v in self.edges():
            yield int(u), int(v)

    def subgraph_without_edges(self, drop: np.ndarray) -> "Graph":
        """New graph with the given (u, v) edges removed (u<v rows)."""
        if drop.size == 0:
            return Graph(self.n, self.indptr.copy(), self.indices.copy())
        drop = canonical_edges(np.asarray(drop, dtype=np.int64))
        keep = edge_set_difference(self.edges(), drop)
        return Graph._from_canonical(self.n, keep)

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)


class WeightedGraph(Graph):
    """Undirected graph with one weight per edge, CSR-aligned.

    ``weights`` is aligned with ``indices`` (each direction carries its
    edge's weight) and ``edge_ids`` maps each direction to the canonical
    edge index in :meth:`edge_list` order, so MSF algorithms can report
    original edges after contractions.

    MSF assumes distinct weights (paper §7); :meth:`weights_distinct`
    reports whether that holds, and :func:`total_order_key` provides the
    paper's suggested tie-break by endpoint ids otherwise.
    """

    __slots__ = ("weights", "edge_ids", "_edge_list", "_edge_weights")

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        edge_ids: np.ndarray,
        edge_list: np.ndarray,
        edge_weights: np.ndarray,
    ) -> None:
        super().__init__(n, indptr, indices)
        self.weights = weights
        self.edge_ids = edge_ids
        self._edge_list = edge_list
        self._edge_weights = edge_weights

    @classmethod
    def from_weighted_edges(
        cls,
        n: int,
        edges: Iterable[tuple[int, int]] | np.ndarray,
        weights: Iterable[float] | np.ndarray,
    ) -> "WeightedGraph":
        earr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                          dtype=np.int64)
        if earr.size == 0:
            earr = earr.reshape(0, 2)
        warr = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                          dtype=np.float64)
        if earr.shape[0] != warr.shape[0]:
            raise ValueError("edges and weights must have equal length")
        if earr.size and np.any(earr[:, 0] == earr[:, 1]):
            raise ValueError("self-loops are not allowed")
        if earr.size and (earr.min() < 0 or earr.max() >= n):
            raise ValueError("edge endpoint out of range [0, n)")
        # Canonicalize u < v, keep first weight among duplicates.
        lo = np.minimum(earr[:, 0], earr[:, 1])
        hi = np.maximum(earr[:, 0], earr[:, 1])
        order = np.lexsort((hi, lo))
        lo, hi, warr = lo[order], hi[order], warr[order]
        if lo.size:
            uniq = np.ones(lo.size, dtype=bool)
            uniq[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
            lo, hi, warr = lo[uniq], hi[uniq], warr[uniq]
        edge_list = np.column_stack([lo, hi]) if lo.size else np.zeros((0, 2), np.int64)
        m = edge_list.shape[0]
        eids = np.arange(m, dtype=np.int64)
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        w2 = np.concatenate([warr, warr])
        id2 = np.concatenate([eids, eids])
        o = np.lexsort((dst, src)) if src.size else np.array([], dtype=np.int64)
        src, dst, w2, id2 = src[o], dst[o], w2[o], id2[o]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if src.size:
            np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(n, indptr, dst.copy(), w2.copy(), id2.copy(), edge_list, warr.copy())

    # -- accessors ----------------------------------------------------------

    def edge_list(self) -> np.ndarray:
        """(m, 2) canonical edge array (u < v); row index = edge id."""
        return self._edge_list

    def edge_weights(self) -> np.ndarray:
        """Weight per canonical edge id."""
        return self._edge_weights

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors` of v (a view)."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_edge_ids(self, v: int) -> np.ndarray:
        """Canonical edge ids aligned with :meth:`neighbors` of v (a view)."""
        return self.edge_ids[self.indptr[v]:self.indptr[v + 1]]

    def weights_distinct(self) -> bool:
        return np.unique(self._edge_weights).size == self._edge_weights.size

    def total_weight(self, edge_ids: np.ndarray) -> float:
        return float(self._edge_weights[edge_ids].sum())

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.n}, m={self.m})"


def canonical_edges(arr: np.ndarray) -> np.ndarray:
    """Normalize an edge array: u < v per row, deduplicated, lex-sorted."""
    if arr.size == 0:
        return arr.reshape(0, 2).astype(np.int64)
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    pairs = np.column_stack([lo, hi])
    pairs = np.unique(pairs, axis=0)
    return pairs.astype(np.int64)


def edge_set_difference(edges: np.ndarray, drop: np.ndarray) -> np.ndarray:
    """Rows of ``edges`` not present in ``drop`` (both canonical u<v)."""
    if edges.size == 0 or drop.size == 0:
        return edges
    n = int(max(edges.max(), drop.max())) + 1
    key_e = edges[:, 0].astype(np.int64) * n + edges[:, 1]
    key_d = drop[:, 0].astype(np.int64) * n + drop[:, 1]
    return edges[~np.isin(key_e, key_d)]


def total_order_key(weight: float, u: int, v: int) -> tuple[float, int, int]:
    """Strict total order on edges: weight, tie-broken by endpoint ids.

    The paper assumes distinct weights "for simplicity" and notes ties can
    be broken by endpoint ids; this is that tie-break.
    """
    return (weight, min(u, v), max(u, v))
