"""Descriptive graph statistics (library utility used by the CLI and
examples; sequential — not part of the AMPC cost model)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph
from .validation import components_reference


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph.

    Attributes:
        n / m: vertex and edge counts.
        min_degree / max_degree / mean_degree: degree profile.
        n_components: connected components.
        largest_component: size of the biggest component.
        n_isolated: vertices of degree 0.
        clustering: average local clustering coefficient (exact).
        degree_histogram: counts per degree (index = degree).
    """

    n: int
    m: int
    min_degree: int
    max_degree: int
    mean_degree: float
    n_components: int
    largest_component: int
    n_isolated: int
    clustering: float
    degree_histogram: tuple[int, ...]

    def format(self) -> str:
        lines = [
            f"n = {self.n}, m = {self.m}",
            f"degrees: min {self.min_degree}, mean {self.mean_degree:.2f}, "
            f"max {self.max_degree} ({self.n_isolated} isolated)",
            f"components: {self.n_components} "
            f"(largest {self.largest_component})",
            f"avg clustering coefficient: {self.clustering:.4f}",
        ]
        return "\n".join(lines)


def graph_stats(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for a graph."""
    degs = graph.degrees
    labels = components_reference(graph)
    _, counts = np.unique(labels, return_counts=True)
    histogram = np.bincount(degs) if graph.n else np.zeros(1, np.int64)
    return GraphStats(
        n=graph.n,
        m=graph.m,
        min_degree=int(degs.min()) if graph.n else 0,
        max_degree=int(degs.max()) if graph.n else 0,
        mean_degree=float(degs.mean()) if graph.n else 0.0,
        n_components=int(counts.size),
        largest_component=int(counts.max()) if counts.size else 0,
        n_isolated=int((degs == 0).sum()),
        clustering=average_clustering(graph),
        degree_histogram=tuple(int(x) for x in histogram),
    )


def average_clustering(graph: Graph) -> float:
    """Exact average local clustering coefficient.

    C(v) = triangles through v / (deg(v) choose 2); vertices of degree
    < 2 contribute 0 (the convention networkx uses).
    """
    if graph.n == 0:
        return 0.0
    total = 0.0
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        d = nbrs.size
        if d < 2:
            continue
        links = 0
        nbr_set = set(nbrs.tolist())
        for u in nbrs.tolist():
            # Count each neighbor pair once via sorted ids.
            for w in graph.neighbors(u).tolist():
                if w > u and w in nbr_set:
                    links += 1
        total += 2.0 * links / (d * (d - 1))
    return total / graph.n


def triangle_count(graph: Graph) -> int:
    """Total number of triangles (each counted once)."""
    count = 0
    for v in range(graph.n):
        nbrs = graph.neighbors(v)
        nbr_set = set(int(x) for x in nbrs if x > v)
        for u in nbrs.tolist():
            if u <= v:
                continue
            for w in graph.neighbors(u).tolist():
                if w > u and w in nbr_set:
                    count += 1
    return count


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over edges (NaN-safe)."""
    if graph.m == 0:
        return 0.0
    edges = graph.edges()
    degs = graph.degrees
    x = degs[edges[:, 0]].astype(np.float64)
    y = degs[edges[:, 1]].astype(np.float64)
    # Symmetrize (undirected edges contribute both orientations).
    xs = np.concatenate([x, y])
    ys = np.concatenate([y, x])
    if xs.std() == 0 or ys.std() == 0:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])
