"""Graph substrate: containers, generators, DDS encodings, validation."""

from . import csr, files, generators, io, stats, validation
from .csr import MmapGraph, build_csr
from .graph import Graph, WeightedGraph, canonical_edges, edge_set_difference

__all__ = [
    "Graph",
    "MmapGraph",
    "WeightedGraph",
    "build_csr",
    "canonical_edges",
    "edge_set_difference",
    "csr",
    "files",
    "generators",
    "stats",
    "io",
    "validation",
]
