"""Graph substrate: containers, generators, DDS encodings, validation."""

from . import files, generators, io, stats, validation
from .graph import Graph, WeightedGraph, canonical_edges, edge_set_difference

__all__ = [
    "Graph",
    "WeightedGraph",
    "canonical_edges",
    "edge_set_difference",
    "files",
    "generators",
    "stats",
    "io",
    "validation",
]
