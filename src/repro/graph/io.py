"""DDS encodings of graphs, lists and per-vertex tables.

The AMPC algorithms read graphs through the distributed data store using
key conventions shared between drivers and machine programs:

* ``("deg", v) -> deg(v)`` and ``("adj", v, i) -> i-th neighbor`` for plain
  graphs (i is 0-based; neighbors in sorted order),
* ``("adjw", v, i) -> (neighbor, weight, edge_id)`` for weighted graphs,
* the *flat* weighted scheme used by the vectorized MSF path —
  ``("deg", v) -> (deg(v), base_v)`` with ``base_v`` the row start in the
  CSR, and ``("adjw", base_v + i) -> (neighbor, weight, edge_id)`` —
  whose integer-only key columns make it expressible both as scalar pairs
  (:func:`encode_weighted_graph_flat`) and as ``setup_arrays`` columns
  (:func:`encode_weighted_graph_arrays`) with identical key placement,
* ``("succ", v) / ("pred", v)`` for cycle and list pointer structures,
* ``(name, v) -> value`` for driver-published per-vertex tables (sampled
  flags, statuses, priorities, ...).

Every encoder returns an iterator of (key, value) pairs suitable for
``AMPCRuntime.round(setup=...)``; the runtime charges their publication as
writes, so the accounting includes the cost of re-materializing state
between rounds, as a real deployment must.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator

import numpy as np

from .graph import Graph, WeightedGraph

Pairs = Iterator[tuple[Hashable, Any]]


def encode_graph(graph: Graph, prefix: str = "adj") -> Pairs:
    """CSR adjacency as ("deg", v) and (prefix, v, i) pairs."""
    indptr, indices = graph.indptr, graph.indices
    for v in range(graph.n):
        start, end = indptr[v], indptr[v + 1]
        yield ("deg", v), int(end - start)
        for i in range(end - start):
            yield (prefix, v, i), int(indices[start + i])


def encode_graph_arrays(
    graph: Graph,
    prefix: str = "adj",
    *,
    chunk_edges: int = 1 << 20,
) -> Iterator[tuple]:
    """Chunked columnar twin of :func:`encode_graph` for
    ``round_batch(setup_arrays=...)``.

    Yields ``("deg", vertex_ids, degrees)`` triples and slotted
    ``(prefix, vertex_ids, slots, neighbors)`` quadruples whose keys,
    values, write count (n + 2m) and per-server placement are identical
    to the scalar pair stream — only the write *order* differs (all
    degrees, then adjacency), which no ledger observes.

    Chunking is the out-of-core contract: no yielded array exceeds
    ``chunk_edges`` rows, and when ``graph`` is an
    :class:`~repro.graph.csr.MmapGraph` the neighbor columns are
    read-only mmap slices the store retains without copying — peak RSS
    stays O(chunk), not O(m).
    """
    indptr, indices = graph.indptr, graph.indices
    n = graph.n
    step = max(1, int(chunk_edges))

    def _sealed(array: np.ndarray) -> np.ndarray:
        # Freshly computed, never exposed elsewhere: marking it read-only
        # lets the store's append retain it instead of re-copying.
        array.flags.writeable = False
        return array

    for lo in range(0, n, step):
        hi = min(n, lo + step)
        degs = np.asarray(indptr[lo + 1 : hi + 1]) - np.asarray(
            indptr[lo:hi]
        )
        ids = np.arange(lo, hi, dtype=np.int64)
        yield ("deg", _sealed(ids), _sealed(degs))
    total = int(indptr[-1]) if n else 0
    for lo in range(0, total, step):
        hi = min(total, lo + step)
        pos = np.arange(lo, hi, dtype=np.int64)
        rows = np.searchsorted(indptr, pos, side="right") - 1
        slots = pos - np.asarray(indptr[rows])
        yield (prefix, _sealed(rows), _sealed(slots), indices[lo:hi])


def encode_weighted_graph(graph: WeightedGraph, prefix: str = "adjw") -> Pairs:
    """Weighted adjacency as (prefix, v, i) -> (nbr, weight, edge_id)."""
    indptr, indices = graph.indptr, graph.indices
    weights, eids = graph.weights, graph.edge_ids
    for v in range(graph.n):
        start, end = indptr[v], indptr[v + 1]
        yield ("deg", v), int(end - start)
        for i in range(end - start):
            j = start + i
            yield (prefix, v, i), (int(indices[j]), float(weights[j]), int(eids[j]))


def encode_weighted_graph_flat(
    graph: WeightedGraph, prefix: str = "adjw"
) -> Pairs:
    """Flat-key weighted adjacency for the scalar path.

    ``("deg", v) -> (deg, base)`` and ``(prefix, base + i) ->
    (nbr, weight, edge_id)``: the key set (hence server placement) matches
    :func:`encode_weighted_graph_arrays` exactly, so scalar and vectorized
    MSF runs share one contention histogram.
    """
    indptr, indices = graph.indptr, graph.indices
    weights, eids = graph.weights, graph.edge_ids
    for v in range(graph.n):
        start, end = int(indptr[v]), int(indptr[v + 1])
        yield ("deg", v), (end - start, start)
    for pos in range(indices.size):
        yield (prefix, pos), (
            int(indices[pos]), float(weights[pos]), int(eids[pos])
        )


def encode_weighted_graph_arrays(
    graph: WeightedGraph, prefix: str = "adjw"
) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """Columnar twin of :func:`encode_weighted_graph_flat` for
    ``round_batch(setup_arrays=...)``: same keys, one bulk write per
    namespace. The ``prefix`` values are float64 rows (nbr, weight,
    edge_id); ids and edge ids are exact under 2**53."""
    indptr = graph.indptr
    deg_vals = np.stack([np.diff(indptr), indptr[:-1]], axis=1)
    adj_vals = np.stack(
        [
            graph.indices.astype(np.float64),
            graph.weights.astype(np.float64),
            graph.edge_ids.astype(np.float64),
        ],
        axis=1,
    )
    return [
        ("deg", np.arange(graph.n, dtype=np.int64), deg_vals),
        (prefix, np.arange(graph.indices.size, dtype=np.int64), adj_vals),
    ]


def encode_cycle_pointers(graph: Graph) -> Pairs:
    """Orient a union of cycles into ("succ", v)/("pred", v) pairs.

    Every vertex must have degree exactly 2. The orientation follows each
    cycle consistently (successor of v is the neighbor not used to enter v).
    """
    succ, pred = orient_cycles(graph)
    for v in range(graph.n):
        yield ("succ", v), int(succ[v])
        yield ("pred", v), int(pred[v])


def orient_cycles(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Successor/predecessor arrays for a disjoint union of cycles."""
    degs = graph.degrees
    if graph.n and not np.all(degs == 2):
        bad = int(np.flatnonzero(degs != 2)[0])
        raise ValueError(
            f"not a union of cycles: vertex {bad} has degree {degs[bad]}"
        )
    n = graph.n
    succ = np.full(n, -1, dtype=np.int64)
    pred = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    for start in range(n):
        if visited[start]:
            continue
        prev = start
        cur = int(graph.neighbors(start)[0])
        visited[start] = True
        succ[start] = cur
        pred[cur] = start
        while cur != start:
            visited[cur] = True
            a, b = graph.neighbors(cur)
            nxt = int(b) if int(a) == prev else int(a)
            succ[cur] = nxt
            pred[nxt] = cur
            prev, cur = cur, nxt
    return succ, pred


def encode_list_pointers(succ: np.ndarray, name: str = "succ") -> Pairs:
    """Successor array as (name, v) pairs; -1 entries are encoded too (the
    tail's successor), read back as -1 sentinels."""
    for v in range(succ.size):
        yield (name, v), int(succ[v])


def encode_table(name: str, values: dict | np.ndarray) -> Pairs:
    """Per-vertex table as (name, v) -> value pairs.

    Accepts a dict (sparse) or an array (dense; index = vertex).
    """
    if isinstance(values, dict):
        for v, value in values.items():
            yield (name, v), value
    else:
        for v in range(len(values)):
            yield (name, v), values[v].item() if isinstance(values[v], np.generic) else values[v]


def encode_flags(name: str, members: Iterable[int]) -> Pairs:
    """Set membership as (name, v) -> 1 pairs (absent = not a member)."""
    for v in members:
        yield (name, int(v)), 1


def chain(*encoders: Iterable[tuple[Hashable, Any]]) -> Pairs:
    """Concatenate several pair iterators into one setup stream."""
    for enc in encoders:
        yield from enc


def graph_pair_count(graph: Graph) -> int:
    """Number of pairs :func:`encode_graph` emits (n + 2m)."""
    return graph.n + 2 * graph.m
