"""External-memory CSR construction and memory-mapped graphs.

This is the out-of-core half of the ingestion pipeline (ROADMAP item 4):
:func:`build_csr` turns a stream of edge chunks — from the binary
edge-list cache (:mod:`repro.graph.files`), the streaming RMAT generator
(:mod:`repro.graph.generators`), or any ``(k, 2)`` int64 array iterator —
into an on-disk CSR cache (``indptr.npy`` / ``indices.npy`` /
``meta.json``) without ever materializing the graph in RAM, and
:class:`MmapGraph` maps that cache back as a
:class:`~repro.graph.graph.Graph` whose ``indptr``/``indices`` are
read-only ``np.memmap`` views — every existing algorithm runs off-disk
graphs unmodified.

The builder is a chunked two-pass counting sort (semi-external: RAM is
O(n + chunk), never O(m)):

1. **Count** — stream the edge chunks once, validating endpoints and
   self-loops, and accumulate per-vertex degree counts (both directions,
   duplicates included) with ``np.bincount``. One-shot iterators are
   spooled to a raw edge file during this pass so pass 2 can re-read
   them.
2. **Scatter** — stream again, writing each direction's neighbor into
   its row's slice of a rough on-disk ``indices`` array via per-chunk
   stable sort + per-row write cursors.
3. **Compact** — walk the rough array in vertex blocks (each block's
   rows fit the chunk budget), sort each block's rows, drop duplicate
   (row, neighbor) entries in place, and stream the compacted columns
   into the final ``indices.npy``.

The result is bit-identical to ``Graph.from_edges`` on the same edge
list: per-row neighbors sorted ascending, duplicates (in either
orientation) collapsed, self-loops rejected (or dropped with
``drop_self_loops=True``, for generator families like RMAT that emit
them).

Mmap lifetime rule: the arrays of an :class:`MmapGraph` are views into
the cache directory's files — the directory must outlive the graph and
every store the graph's columns were written into (see docs/model.md §8).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from .graph import Graph

FORMAT_VERSION = 1
DEFAULT_CHUNK_EDGES = 1 << 20

_META = "meta.json"
_INDPTR = "indptr.npy"
_INDICES = "indices.npy"
_ROUGH = "indices.rough.npy"
_SPOOL = "edges.spool.bin"


def edge_chunks(
    edges: np.ndarray, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[np.ndarray]:
    """View an ``(m, 2)`` edge array (or memmap) as bounded chunks."""
    step = max(1, int(chunk_edges))
    for lo in range(0, edges.shape[0], step):
        yield edges[lo : lo + step]


def _clean_chunk(
    chunk: np.ndarray, n: int, drop_self_loops: bool
) -> np.ndarray:
    """Validate one edge chunk; returns it with self-loops handled."""
    chunk = np.asarray(chunk, dtype=np.int64)
    if chunk.ndim != 2 or chunk.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got shape {chunk.shape}")
    if chunk.size == 0:
        return chunk.reshape(0, 2)
    if chunk.min() < 0 or chunk.max() >= n:
        raise ValueError("edge endpoint out of range [0, n)")
    loops = chunk[:, 0] == chunk[:, 1]
    if np.any(loops):
        if not drop_self_loops:
            raise ValueError("self-loops are not allowed (paper §3)")
        chunk = chunk[~loops]
    return chunk


def _scatter(
    rough: np.ndarray,
    cursor: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
) -> None:
    """Write each dst into the next free slot of src's row slice."""
    if src.size == 0:
        return
    order = np.argsort(src, kind="stable")
    s, d = src[order], dst[order]
    new_run = np.empty(s.size, dtype=bool)
    new_run[0] = True
    np.not_equal(s[1:], s[:-1], out=new_run[1:])
    starts = np.flatnonzero(new_run)
    run_id = np.cumsum(new_run) - 1
    within = np.arange(s.size, dtype=np.int64) - starts[run_id]
    rough[cursor[s] + within] = d
    lengths = np.diff(np.append(starts, s.size))
    cursor[s[starts]] += lengths


def build_csr(
    edges: np.ndarray | Iterable[np.ndarray],
    n: int,
    out_dir: str | os.PathLike,
    *,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    drop_self_loops: bool = False,
) -> "MmapGraph":
    """Build an on-disk CSR cache from streamed edges; return it mapped.

    Args:
        edges: an ``(m, 2)`` int64 array/memmap, or an iterable of such
            chunks (a one-shot generator is fine — it is spooled to disk
            during the counting pass).
        n: number of vertices; endpoints must lie in ``[0, n)``.
        out_dir: cache directory (created if needed); receives
            ``indptr.npy``, ``indices.npy`` and ``meta.json``.
        chunk_edges: bound on rows processed (and resident) at once.
        drop_self_loops: silently drop ``u == u`` rows instead of
            raising, for generators (e.g. RMAT) that emit them.
    """
    n = int(n)
    if n < 0:
        raise ValueError(f"vertex count must be >= 0, got {n}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    step = max(1, int(chunk_edges))
    spool_path = out / _SPOOL
    rough_path = out / _ROUGH
    spooled = False

    # Pass 1: count degrees (duplicates included, both directions),
    # spooling iterator input so pass 2 can re-stream it.
    counts = np.zeros(n, dtype=np.int64)

    def _count(chunk: np.ndarray) -> None:
        counts[:] += np.bincount(chunk[:, 0], minlength=n)
        counts[:] += np.bincount(chunk[:, 1], minlength=n)

    try:
        if isinstance(edges, np.ndarray):
            for chunk in edge_chunks(edges, step):
                _count(_clean_chunk(chunk, n, drop_self_loops))
        else:
            spooled = True
            with open(spool_path, "wb") as spool:
                for chunk in edges:
                    chunk = _clean_chunk(chunk, n, drop_self_loops)
                    if chunk.size:
                        spool.write(
                            np.ascontiguousarray(chunk).tobytes()
                        )
                        _count(chunk)

        def _chunks() -> Iterator[np.ndarray]:
            if isinstance(edges, np.ndarray):
                for chunk in edge_chunks(edges, step):
                    yield _clean_chunk(chunk, n, drop_self_loops)
            elif os.path.getsize(spool_path):
                spool = np.memmap(spool_path, dtype=np.int64, mode="r")
                yield from edge_chunks(spool.reshape(-1, 2), step)

        total = int(counts.sum())
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])

        if total:
            # Pass 2: scatter both directions into each row's slice.
            rough = np.lib.format.open_memmap(
                rough_path, mode="w+", dtype=np.int64, shape=(total,)
            )
            cursor = offsets[:-1].copy()
            for chunk in _chunks():
                _scatter(rough, cursor, chunk[:, 0], chunk[:, 1])
                _scatter(rough, cursor, chunk[:, 1], chunk[:, 0])

            # Pass 3: per-block sort + dedup, compacting in place (the
            # write position never passes the block's read position).
            budget = max(step, int(counts.max()))
            final_counts = np.zeros(n, dtype=np.int64)
            write_pos = 0
            v = 0
            while v < n:
                w = v + 1
                while w < n and offsets[w + 1] - offsets[v] <= budget:
                    w += 1
                seg = np.asarray(rough[offsets[v] : offsets[w]])
                rows = np.repeat(
                    np.arange(v, w, dtype=np.int64), counts[v:w]
                )
                order = np.lexsort((seg, rows))
                rows, seg = rows[order], seg[order]
                if seg.size:
                    keep = np.empty(seg.size, dtype=bool)
                    keep[0] = True
                    keep[1:] = (rows[1:] != rows[:-1]) | (
                        seg[1:] != seg[:-1]
                    )
                    rows, seg = rows[keep], seg[keep]
                final_counts[v:w] = np.bincount(rows - v, minlength=w - v)
                rough[write_pos : write_pos + seg.size] = seg
                write_pos += seg.size
                v = w

            indptr = np.lib.format.open_memmap(
                out / _INDPTR, mode="w+", dtype=np.int64, shape=(n + 1,)
            )
            indptr[0] = 0
            np.cumsum(final_counts, out=indptr[1:])
            indices = np.lib.format.open_memmap(
                out / _INDICES,
                mode="w+",
                dtype=np.int64,
                shape=(write_pos,),
            )
            for lo in range(0, write_pos, step):
                hi = min(write_pos, lo + step)
                indices[lo:hi] = rough[lo:hi]
            indices.flush()
            indptr.flush()
            del indices, indptr, rough
        else:
            np.save(out / _INDPTR, np.zeros(n + 1, dtype=np.int64))
            np.save(out / _INDICES, np.zeros(0, dtype=np.int64))
            write_pos = 0
    finally:
        for temp in (rough_path, spool_path) if spooled else (rough_path,):
            try:
                os.unlink(temp)
            except FileNotFoundError:
                pass

    meta = {
        "version": FORMAT_VERSION,
        "n": n,
        "m": write_pos // 2,
        "directed_rows": write_pos,
    }
    (out / _META).write_text(json.dumps(meta))
    return MmapGraph.load(out)


class MmapGraph(Graph):
    """A :class:`Graph` whose CSR arrays are read-only file mappings.

    Same ``n`` / ``indptr`` / ``indices`` interface, so every algorithm
    (and :func:`repro.graph.io.encode_graph_arrays`) runs off-disk
    graphs unmodified; the OS page cache decides what is resident. The
    cache directory must outlive the instance and anything holding
    views of its columns.
    """

    __slots__ = ("path",)

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "MmapGraph":
        path = Path(directory)
        meta = json.loads((path / _META).read_text())
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported CSR cache version {meta.get('version')!r} "
                f"in {path}"
            )
        indptr = np.load(path / _INDPTR, mmap_mode="r")
        if meta["directed_rows"]:
            indices = np.load(path / _INDICES, mmap_mode="r")
        else:
            indices = np.zeros(0, dtype=np.int64)
        graph = cls(int(meta["n"]), indptr, indices)
        graph.path = path
        return graph

    def __repr__(self) -> str:
        return f"MmapGraph(n={self.n}, m={self.m}, path={str(self.path)!r})"


def is_cache(directory: str | os.PathLike) -> bool:
    """Whether ``directory`` holds a complete CSR cache."""
    path = Path(directory)
    return all(
        (path / name).is_file() for name in (_META, _INDPTR, _INDICES)
    )
