"""Experiment F1-row4 — MIS: AMPC O(1) vs MPC Θ(log n)-style (paper §5).

Reproduces the Figure 1 row "Maximal independent set: O(1) | Õ(√log n)".
The implementable MPC baseline is Luby's algorithm (Θ(log n) iterations);
the claim checked here is the shape: AMPC iterations flat in n, Luby's
growing, with AMPC's advantage widening (see luby_mis module docstring
for why Ghaffari–Uitto is out of scope).
"""

import pytest

from repro.algorithms.mis import maximal_independent_set, sequential_lfmis
from repro.baselines.luby_mis import luby_mis
from repro.graph import generators

NS = [512, 2048, 8192, 32768]

_ampc: dict[int, tuple[int, int]] = {}
_luby: dict[int, tuple[int, int]] = {}


def workload(n):
    return generators.erdos_renyi_gnm(n, 3 * n, rng=n)


@pytest.mark.parametrize("n", NS)
def test_ampc_mis(benchmark, record, n):
    g = workload(n)
    result = benchmark.pedantic(
        lambda: maximal_independent_set(g, seed=1), rounds=1, iterations=1
    )
    import numpy as np

    assert np.array_equal(result.in_mis, sequential_lfmis(g, result.pi))
    _ampc[n] = (result.iterations, result.report.n_rounds)
    record(
        "F1-row4: MIS (AMPC side)",
        ["n", "m", "iterations", "rounds", "query calls", "m+n"],
        [n, g.m, result.iterations, result.report.n_rounds,
         result.total_query_calls, g.m + g.n],
        rounds=result.report.n_rounds,
        iterations=result.iterations,
    )


@pytest.mark.parametrize("n", NS)
def test_luby_mis(benchmark, record, n):
    g = workload(n)
    result = benchmark.pedantic(
        lambda: luby_mis(g, seed=1), rounds=1, iterations=1
    )
    _luby[n] = (result.iterations, result.report.n_rounds)
    record(
        "F1-row4: MIS (MPC side, Luby)",
        ["n", "m", "iterations", "rounds"],
        [n, g.m, result.iterations, result.report.n_rounds],
        rounds=result.report.n_rounds,
        iterations=result.iterations,
    )


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape_flat_vs_growing(benchmark):
    from conftest import record_row

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in NS:
        record_row(
            "F1-row4: MIS (comparison)",
            ["n", "AMPC iters", "Luby iters", "AMPC rounds", "Luby rounds"],
            [n, _ampc[n][0], _luby[n][0], _ampc[n][1], _luby[n][1]],
        )
    ampc_iters = [_ampc[n][0] for n in NS]
    luby_iters = [_luby[n][0] for n in NS]
    assert max(ampc_iters) <= 3, f"AMPC iterations should be O(1): {ampc_iters}"
    assert luby_iters[-1] >= ampc_iters[-1], (luby_iters, ampc_iters)
    assert max(ampc_iters) - min(ampc_iters) <= 1
