"""Extension experiment — maximal matching in O(1/ε) rounds (§10).

The paper lists maximal matching as future work; the library implements
it via the edge-side LFMM query process (see
:mod:`repro.algorithms.matching`). Same shape claim as MIS: iterations
flat in n.
"""

import numpy as np
import pytest

from repro.algorithms.matching import maximal_matching, sequential_lfmm
from repro.graph import generators

NS = [512, 2048, 8192]

_iters: dict[int, int] = {}


@pytest.mark.parametrize("n", NS)
def test_ampc_matching(benchmark, record, n):
    g = generators.erdos_renyi_gnm(n, 3 * n, rng=n)
    result = benchmark.pedantic(
        lambda: maximal_matching(g, seed=1), rounds=1, iterations=1
    )
    assert np.array_equal(result.edge_ids, sequential_lfmm(g, result.pi))
    _iters[n] = result.iterations
    record(
        "extension: maximal matching (AMPC)",
        ["n", "m", "|matching|", "iterations", "rounds"],
        [n, g.m, result.edge_ids.size, result.iterations,
         result.report.n_rounds],
        rounds=result.report.n_rounds,
        iterations=result.iterations,
    )


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape_flat(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    iters = [_iters[n] for n in NS]
    assert max(iters) <= 3, iters
