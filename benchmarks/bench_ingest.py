"""Experiment I1 — out-of-core ingestion throughput and peak RSS.

Measures the ingestion pipeline of ROADMAP item 4 (``repro.graph.files``
/ ``repro.graph.csr``): per-line vs vectorized edge-list parsing, the
write-once binary edge cache, external-memory CSR construction, the
streaming RMAT generator, and end-to-end vectorized connectivity run
straight off a memory-mapped CSR cache.

Two faces:

* pytest (collected by ``repro bench --quick`` / ``pytest benchmarks``):
  small instances; every run must be bit-identical to the in-memory
  reference (``Graph.from_edges``, the per-line parser).
* ``python benchmarks/bench_ingest.py --out benchmarks/BENCH_ingest.json``
  regenerates the checked-in grid. Each measured stage re-invokes this
  script as a subprocess (``--stage``) so its ``ru_maxrss`` is the peak
  RSS of that stage alone — the bounded-RSS evidence — and edges/sec
  rates are wall-clock, meaningful relative to the recorded host
  fingerprint. The ``speedups`` section holds the headline ratios of
  the fast parse and warm binary cache over the per-line reader.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.graph import csr, files, generators
from repro.graph.graph import Graph
from repro.perf import host_fingerprint

FULL = {
    "parse_edges": [1_000_000, 10_000_000],
    "rmat": {"scale": 20, "edge_factor": 10},   # 10,485,760 raw edges
    "e2e": {"scale": 20, "edge_factor": 10},
}
QUICK = {
    "parse_edges": [20_000],
    "rmat": {"scale": 10, "edge_factor": 8},
    "e2e": {"scale": 10, "edge_factor": 8},
}

CHUNK_EDGES = 1 << 20


# -- pytest face -----------------------------------------------------------


@pytest.mark.ingest
@pytest.mark.parametrize("m", [2_000, 20_000])
def test_ingest_parse_cell(benchmark, record, m):
    n = max(4, m // 4)
    rng = np.random.default_rng(0)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    edges = edges[edges[:, 0] != edges[:, 1]]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "edges.txt")
        files.write_edge_list(Graph.from_edges(n, edges), path)
        graph = benchmark.pedantic(lambda: files.read_edge_list(path),
                                   rounds=1, iterations=1)
        slow, _w, slow_n = files._parse(path, want_weights=False)
        assert graph == Graph.from_edges(slow_n, slow)
    record(
        "I1: ingestion throughput (quick sizes)",
        ["stage", "edges", "parity"],
        ["parse_fast", m, "yes"],
    )


@pytest.mark.ingest
@pytest.mark.parametrize("m", [2_000, 20_000])
def test_ingest_csr_cell(benchmark, record, m):
    n = max(4, m // 4)
    rng = np.random.default_rng(1)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    edges = edges[edges[:, 0] != edges[:, 1]]
    want = Graph.from_edges(n, edges)
    with tempfile.TemporaryDirectory() as tmp:
        mapped = benchmark.pedantic(
            lambda: csr.build_csr(edges, n, tmp, chunk_edges=1 << 12),
            rounds=1, iterations=1)
        assert np.array_equal(np.asarray(mapped.indptr), want.indptr)
        assert np.array_equal(np.asarray(mapped.indices), want.indices)
    record(
        "I1: ingestion throughput (quick sizes)",
        ["stage", "edges", "parity"],
        ["csr_build", m, "yes"],
    )


# -- measured stages (each runs in its own subprocess) ---------------------


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _write_text(path: str, n: int, m: int, seed: int) -> int:
    """Deterministic text edge list; returns the edge count written."""
    rng = np.random.default_rng(seed)
    written = 0
    with open(path, "w") as fh:
        fh.write(f"# nodes: {n}\n")
        remaining = m
        while remaining:
            k = min(remaining, CHUNK_EDGES)
            chunk = rng.integers(0, n, size=(k, 2), dtype=np.int64)
            chunk = chunk[chunk[:, 0] != chunk[:, 1]]
            np.savetxt(fh, chunk, fmt="%d")
            written += chunk.shape[0]
            remaining -= k
    return written


def stage_parse_perline(args) -> dict:
    t0 = time.perf_counter()
    edges, _weights, n = files._parse(args.path, want_weights=False)
    dt = time.perf_counter() - t0
    return {"edges": int(edges.shape[0]), "n": int(n), "seconds": dt}


def stage_parse_fast(args) -> dict:
    t0 = time.perf_counter()
    edges, n = files._collect_fast(args.path)
    dt = time.perf_counter() - t0
    return {"edges": int(edges.shape[0]), "n": int(n), "seconds": dt}


def stage_cache_build(args) -> dict:
    t0 = time.perf_counter()
    _npy, n = files.build_edge_cache(args.path)
    dt = time.perf_counter() - t0
    edges, _n = files.load_edge_cache(args.path)
    return {"edges": int(edges.shape[0]), "n": int(n), "seconds": dt}


def stage_cache_load(args) -> dict:
    t0 = time.perf_counter()
    edges, n = files.load_edge_cache(args.path)
    # Touch every edge so the rate is a true read, not an mmap open.
    checksum = int(edges.sum(dtype=np.int64))
    dt = time.perf_counter() - t0
    return {"edges": int(edges.shape[0]), "n": int(n), "seconds": dt,
            "checksum": checksum}


def stage_csr_build(args) -> dict:
    edges, n = files.load_edge_cache(args.path)
    t0 = time.perf_counter()
    graph = csr.build_csr(edges, n, args.workdir, chunk_edges=CHUNK_EDGES,
                          drop_self_loops=True)
    dt = time.perf_counter() - t0
    return {"edges": int(edges.shape[0]), "n": graph.n, "m": graph.m,
            "seconds": dt}


def stage_rmat(args) -> dict:
    t0 = time.perf_counter()
    total = 0
    for chunk in generators.rmat_edge_chunks(
            args.scale, args.edge_factor, rng=1, chunk_edges=CHUNK_EDGES):
        total += chunk.shape[0]
    dt = time.perf_counter() - t0
    return {"edges": total, "n": 1 << args.scale, "seconds": dt}


def stage_e2e(args) -> dict:
    """RMAT stream -> CSR cache -> mmap graph -> vectorized connectivity."""
    import repro

    n = 1 << args.scale
    t0 = time.perf_counter()
    graph = csr.build_csr(
        generators.rmat_edge_chunks(args.scale, args.edge_factor, rng=1,
                                    chunk_edges=CHUNK_EDGES),
        n, args.workdir, chunk_edges=CHUNK_EDGES, drop_self_loops=True,
    )
    t_ingest = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = repro.connectivity(graph, seed=1, vectorized=True)
    t_solve = time.perf_counter() - t0
    return {
        "edges": int(args.edge_factor) << args.scale,
        "n": graph.n,
        "m": graph.m,
        "ingest_seconds": t_ingest,
        "solve_seconds": t_solve,
        "seconds": t_ingest + t_solve,
        "n_components": result.n_components,
        "phases": result.phases,
        "rounds": result.report.n_rounds,
    }


STAGES = {
    "parse_perline": stage_parse_perline,
    "parse_fast": stage_parse_fast,
    "cache_build": stage_cache_build,
    "cache_load": stage_cache_load,
    "csr_build": stage_csr_build,
    "rmat": stage_rmat,
    "e2e": stage_e2e,
}


def _run_stage(stage: str, **kwargs) -> dict:
    """Re-invoke this script for one stage; its ru_maxrss is clean."""
    cmd = [sys.executable, os.path.abspath(__file__), "--stage", stage]
    for key, value in kwargs.items():
        cmd += [f"--{key.replace('_', '-')}", str(value)]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"stage {stage} failed:\n{proc.stdout}\n{proc.stderr}")
    out = json.loads(proc.stdout.strip().splitlines()[-1])
    out["stage"] = stage
    if "seconds" in out and out["seconds"] > 0 and "edges" in out:
        out["edges_per_sec"] = round(out["edges"] / out["seconds"], 1)
    return out


def sweep(sizes: dict, quick: bool) -> dict:
    rows = []
    speedups = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as tmp:
        for m in sizes["parse_edges"]:
            n = max(4, m // 8)
            path = os.path.join(tmp, f"edges-{m}.txt")
            written = _write_text(path, n, m, seed=m)
            print(f"ingest: text file m={written} -> measuring", flush=True)
            per_stage = {}
            for stage in ("parse_perline", "parse_fast", "cache_build",
                          "cache_load"):
                row = _run_stage(stage, path=path)
                row["input_edges"] = written
                rows.append(row)
                per_stage[stage] = row
            workdir = os.path.join(tmp, f"csr-{m}")
            row = _run_stage("csr_build", path=path, workdir=workdir)
            row["input_edges"] = written
            rows.append(row)
            base = per_stage["parse_perline"]["seconds"]
            speedups[f"parse_fast_m{m}"] = round(
                base / per_stage["parse_fast"]["seconds"], 2)
            speedups[f"cache_load_m{m}"] = round(
                base / per_stage["cache_load"]["seconds"], 2)
        rmat = sizes["rmat"]
        row = _run_stage("rmat", scale=rmat["scale"],
                         edge_factor=rmat["edge_factor"])
        rows.append(row)
        e2e = sizes["e2e"]
        print(f"ingest: e2e rmat scale={e2e['scale']} "
              f"ef={e2e['edge_factor']} (vectorized connectivity)",
              flush=True)
        e2e_row = _run_stage("e2e", scale=e2e["scale"],
                             edge_factor=e2e["edge_factor"],
                             workdir=os.path.join(tmp, "csr-e2e"))
        rows.append(e2e_row)
    return {
        "experiment": "I1-ingestion",
        "quick": quick,
        "host": host_fingerprint(),
        "chunk_edges": CHUNK_EDGES,
        "rows": rows,
        "speedups": speedups,
        "e2e": e2e_row,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="benchmarks/BENCH_ingest.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny instances (smoke-test the sweep itself; "
                             "REPRO_BENCH_QUICK=1 implies this)")
    parser.add_argument("--stage", choices=sorted(STAGES), default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--path", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--workdir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--edge-factor", type=int, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.stage is not None:
        out = STAGES[args.stage](args)
        out["peak_rss_mb"] = round(_peak_rss_mb(), 1)
        print(json.dumps(out))
        return 0

    quick = args.quick or bool(os.environ.get("REPRO_BENCH_QUICK"))
    payload = sweep(QUICK if quick else FULL, quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    best = max((v for k, v in payload["speedups"].items()), default=0.0)
    print(f"wrote {args.out} ({len(payload['rows'])} rows, "
          f"best ingest speedup vs per-line: {best:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
