"""Experiments R1 and R2 — recovery overhead vs fault rate.

R1 (chaos layer): sweeps a composed *simulated* fault plan (machine
crashes + DDS server outages + transient read timeouts, replication
factor 2) over increasing fault rates and runs connectivity, list
ranking, and MIS under each plan. Every run must produce results
*bit-identical* to the fault-free baseline — the paper's §2.1
fault-tolerance claim — while the ledger records what recovery cost.
The sweep is emitted as JSON at session end (stdout, and to the file
named by ``RESILIENCE_JSON`` if set).

At ``rate`` the R1 plan is: crash probability = rate, server outage
probability = rate / 2, read timeout probability = rate / 10 — so the
ISSUE's reference point (20% crash, 10% outage) is the rate = 0.2 row.

R2 (process backend): the same question against *real* OS workers —
pool processes SIGKILLed mid-task, replies dropped (supervisor deadline)
and delayed — at increasing injection rates. The supervisor's respawn /
retry / backoff machinery must deliver the bit-identical answer, and
the ledger records retries, respawns, and recovery wall time. Run this
module directly (``python benchmarks/bench_resilience.py``) to regenerate
the checked-in ``benchmarks/BENCH_resilience.json`` from the R2 sweep.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.algorithms.connectivity import connectivity
from repro.algorithms.list_ranking import list_ranking, sequential_list_ranks
from repro.algorithms.mis import maximal_independent_set
from repro.core.chaos import ChaosRuntime, FaultPlan, ProcessFaultPlan
from repro.core.config import AMPCConfig
from repro.graph import generators
from repro.parallel import (
    RecoveryPolicy,
    shutdown_pool,
    use_backend,
    use_process_faults,
    use_recovery,
)

RATES = [0.0, 0.05, 0.1, 0.2, 0.3]
PROC_RATES = [0.0, 0.05, 0.1, 0.2]
REPLICATION = 2
_N, _M = 600, 1500
_LIST_N = 2048

_sweep: list[dict] = []
_proc_sweep: list[dict] = []

_graph = generators.erdos_renyi_gnm(_N, _M, rng=7)
_succ = generators.linked_list(_LIST_N, rng=7)


def _plan(rate: float) -> FaultPlan:
    if rate == 0.0:
        return FaultPlan(seed=23)
    return (
        FaultPlan.machine_crashes(rate)
        | FaultPlan.server_outages(rate / 2)
        | FaultPlan.read_timeouts(rate / 10)
    ).with_seed(23)


def _config(n_input: int, replication: int = REPLICATION) -> AMPCConfig:
    return AMPCConfig.for_input(
        max(n_input, 1), seed=5, replication_factor=replication
    )


def _record_sweep(algorithm, rate, report, baseline_report, record, benchmark):
    summary = report.recovery_summary()
    entry = {
        "algorithm": algorithm,
        "fault_rate": rate,
        "rounds": report.n_rounds,
        "total_reads": report.total_reads,
        "baseline_reads": baseline_report.total_reads,
        "identical": True,
        **summary,
    }
    _sweep.append(entry)
    record(
        "R1: recovery overhead vs fault rate",
        ["algorithm", "rate", "crashes", "outages", "restores",
         "recovery reads", "overhead %"],
        [algorithm, rate, summary["crashes"], summary["server_outages"],
         summary["checkpoint_restores"], summary["recovery_reads"],
         summary["overhead_reads_pct"]],
        fault_rate=rate,
        recovery_reads=summary["recovery_reads"],
    )


@pytest.mark.chaos
@pytest.mark.parametrize("rate", RATES)
def test_connectivity_under_faults(benchmark, record, rate):
    config = _config(_graph.n + _graph.m)
    baseline = connectivity(_graph, config=config)

    def run():
        return connectivity(_graph, runtime=ChaosRuntime(config, plan=_plan(rate)))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(result.labels, baseline.labels)
    _record_sweep("connectivity", rate, result.report, baseline.report,
                  record, benchmark)


@pytest.mark.chaos
@pytest.mark.parametrize("rate", RATES)
def test_list_ranking_under_faults(benchmark, record, rate):
    config = _config(_LIST_N)
    baseline = list_ranking(_succ, config=config)

    def run():
        return list_ranking(
            _succ, runtime=ChaosRuntime(config, plan=_plan(rate))
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(result.ranks, baseline.ranks)
    assert np.array_equal(result.ranks, sequential_list_ranks(_succ))
    _record_sweep("list_ranking", rate, result.report, baseline.report,
                  record, benchmark)


@pytest.mark.chaos
@pytest.mark.parametrize("rate", RATES)
def test_mis_under_faults(benchmark, record, rate):
    config = _config(_graph.n + _graph.m)
    baseline = maximal_independent_set(_graph, config=config)

    def run():
        return maximal_independent_set(
            _graph, runtime=ChaosRuntime(config, plan=_plan(rate))
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(result.in_mis, baseline.in_mis)
    _record_sweep("mis", rate, result.report, baseline.report,
                  record, benchmark)


# -- R2: real-process fault sweep (pool supervision) ------------------------


def _proc_plan(rate: float) -> ProcessFaultPlan:
    """Kill and delay at ``rate``, hang at ``rate / 5`` (each hang costs
    a full task deadline, so it is the expensive fault kind)."""
    return (
        ProcessFaultPlan.kills(rate, seed=31)
        | ProcessFaultPlan.delays(rate, delay_s=0.01, seed=31)
        | ProcessFaultPlan.hangs(rate / 5, seed=31)
    )


_PROC_POLICY = RecoveryPolicy(task_deadline_s=0.3)


def _run_proc_sweep_row(rate: float) -> dict:
    """One R2 row: connectivity on the process backend under faults."""
    baseline = connectivity(_graph, config=_config(_graph.n + _graph.m,
                                                   replication=1))
    began = time.perf_counter()
    with use_process_faults(_proc_plan(rate)), use_recovery(_PROC_POLICY), \
            use_backend("process", 2):
        faulted = connectivity(_graph, config=_config(
            _graph.n + _graph.m, replication=1))
    wall_s = time.perf_counter() - began
    identical = bool(np.array_equal(baseline.labels, faulted.labels))
    summary = faulted.report.recovery_summary()
    return {
        "algorithm": "connectivity",
        "fault_rate": rate,
        "rounds": faulted.report.n_rounds,
        "identical": identical,
        "wall_s": round(wall_s, 4),
        "task_retries": summary["task_retries"],
        "worker_respawns": summary["worker_respawns"],
        "hedges_won": summary["hedges_won"],
        "hedges_lost": summary["hedges_lost"],
        "recovery_wall_s": summary["recovery_wall_s"],
    }


@pytest.mark.faultproc
@pytest.mark.parametrize("rate", PROC_RATES)
def test_connectivity_under_process_faults(benchmark, record, rate):
    row = benchmark.pedantic(lambda: _run_proc_sweep_row(rate),
                             rounds=1, iterations=1)
    assert row["identical"], "process-fault run diverged from serial"
    _proc_sweep.append(row)
    record(
        "R2: process-fault recovery vs injection rate",
        ["rate", "retries", "respawns", "hedges +/-", "recovery s",
         "wall s"],
        [rate, row["task_retries"], row["worker_respawns"],
         f"{row['hedges_won']}/{row['hedges_lost']}",
         row["recovery_wall_s"], row["wall_s"]],
        fault_rate=rate,
        worker_respawns=row["worker_respawns"],
    )


@pytest.mark.faultproc
@pytest.mark.aggregate  # asserts over the full R2 sweep; skipped by --quick
def test_process_sweep_recovers(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    shutdown_pool()
    assert len(_proc_sweep) == len(PROC_RATES)
    by_rate = {row["fault_rate"]: row for row in _proc_sweep}
    assert by_rate[0.0]["task_retries"] == 0
    assert by_rate[0.0]["worker_respawns"] == 0
    top = by_rate[PROC_RATES[-1]]
    assert top["task_retries"] > 0
    assert top["worker_respawns"] > 0


@pytest.mark.chaos
@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_emit_sweep_json(benchmark):
    """Runs last: dump the whole sweep as JSON (stdout and optional file)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_sweep) == 3 * len(RATES)
    # Overhead must be monotone-ish: the highest fault rate costs more
    # recovery reads than the zero rate for every algorithm.
    for algorithm in ("connectivity", "list_ranking", "mis"):
        rows = [e for e in _sweep if e["algorithm"] == algorithm]
        by_rate = {e["fault_rate"]: e for e in rows}
        assert by_rate[0.0]["recovery_reads"] == 0
        assert by_rate[RATES[-1]]["recovery_reads"] > 0
    payload = json.dumps({"experiment": "R1-resilience-sweep",
                          "replication": REPLICATION,
                          "rows": _sweep}, indent=2)
    print("\n" + payload)
    out_path = os.environ.get("RESILIENCE_JSON")
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(payload + "\n")


def main() -> None:
    """Regenerate ``benchmarks/BENCH_resilience.json`` from the R2 sweep
    (no pytest needed): real workers killed/hung/delayed at each rate,
    bit-identity checked, recovery accounting recorded."""
    rows = []
    for rate in PROC_RATES:
        row = _run_proc_sweep_row(rate)
        status = "ok" if row["identical"] else "DIVERGED"
        print(f"rate={rate:<5} [{status}] retries={row['task_retries']} "
              f"respawns={row['worker_respawns']} "
              f"recovery={row['recovery_wall_s']:.3f}s "
              f"wall={row['wall_s']:.3f}s")
        rows.append(row)
    shutdown_pool()
    if not all(r["identical"] for r in rows):
        raise SystemExit("process-fault sweep diverged from serial")
    out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "BENCH_resilience.json")
    payload = {
        "experiment": "R2-process-fault-sweep",
        "workload": {"algorithm": "connectivity", "n": _N, "m": _M},
        "workers": 2,
        "plan": "kills(rate) | delays(rate, 0.01s) | hangs(rate/5)",
        "policy": {"task_deadline_s": _PROC_POLICY.task_deadline_s,
                   "max_task_retries": _PROC_POLICY.max_task_retries},
        "rows": rows,
    }
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
