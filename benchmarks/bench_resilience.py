"""Experiment R1 — recovery overhead vs fault rate (chaos layer).

Sweeps a composed fault plan (machine crashes + DDS server outages +
transient read timeouts, replication factor 2) over increasing fault
rates and runs connectivity, list ranking, and MIS under each plan.
Every run must produce results *bit-identical* to the fault-free
baseline — the paper's §2.1 fault-tolerance claim — while the ledger
records what recovery cost. The sweep is emitted as JSON at session end
(stdout, and to the file named by ``RESILIENCE_JSON`` if set).

At ``rate`` the plan is: crash probability = rate, server outage
probability = rate / 2, read timeout probability = rate / 10 — so the
ISSUE's reference point (20% crash, 10% outage) is the rate = 0.2 row.
"""

import json
import os

import numpy as np
import pytest

from repro.algorithms.connectivity import connectivity
from repro.algorithms.list_ranking import list_ranking, sequential_list_ranks
from repro.algorithms.mis import maximal_independent_set
from repro.core.chaos import ChaosRuntime, FaultPlan
from repro.core.config import AMPCConfig
from repro.graph import generators

RATES = [0.0, 0.05, 0.1, 0.2, 0.3]
REPLICATION = 2
_N, _M = 600, 1500
_LIST_N = 2048

_sweep: list[dict] = []

_graph = generators.erdos_renyi_gnm(_N, _M, rng=7)
_succ = generators.linked_list(_LIST_N, rng=7)


def _plan(rate: float) -> FaultPlan:
    if rate == 0.0:
        return FaultPlan(seed=23)
    return (
        FaultPlan.machine_crashes(rate)
        | FaultPlan.server_outages(rate / 2)
        | FaultPlan.read_timeouts(rate / 10)
    ).with_seed(23)


def _config(n_input: int, replication: int = REPLICATION) -> AMPCConfig:
    return AMPCConfig.for_input(
        max(n_input, 1), seed=5, replication_factor=replication
    )


def _record_sweep(algorithm, rate, report, baseline_report, record, benchmark):
    summary = report.recovery_summary()
    entry = {
        "algorithm": algorithm,
        "fault_rate": rate,
        "rounds": report.n_rounds,
        "total_reads": report.total_reads,
        "baseline_reads": baseline_report.total_reads,
        "identical": True,
        **summary,
    }
    _sweep.append(entry)
    record(
        "R1: recovery overhead vs fault rate",
        ["algorithm", "rate", "crashes", "outages", "restores",
         "recovery reads", "overhead %"],
        [algorithm, rate, summary["crashes"], summary["server_outages"],
         summary["checkpoint_restores"], summary["recovery_reads"],
         summary["overhead_reads_pct"]],
        fault_rate=rate,
        recovery_reads=summary["recovery_reads"],
    )


@pytest.mark.chaos
@pytest.mark.parametrize("rate", RATES)
def test_connectivity_under_faults(benchmark, record, rate):
    config = _config(_graph.n + _graph.m)
    baseline = connectivity(_graph, config=config)

    def run():
        return connectivity(_graph, runtime=ChaosRuntime(config, plan=_plan(rate)))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(result.labels, baseline.labels)
    _record_sweep("connectivity", rate, result.report, baseline.report,
                  record, benchmark)


@pytest.mark.chaos
@pytest.mark.parametrize("rate", RATES)
def test_list_ranking_under_faults(benchmark, record, rate):
    config = _config(_LIST_N)
    baseline = list_ranking(_succ, config=config)

    def run():
        return list_ranking(
            _succ, runtime=ChaosRuntime(config, plan=_plan(rate))
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(result.ranks, baseline.ranks)
    assert np.array_equal(result.ranks, sequential_list_ranks(_succ))
    _record_sweep("list_ranking", rate, result.report, baseline.report,
                  record, benchmark)


@pytest.mark.chaos
@pytest.mark.parametrize("rate", RATES)
def test_mis_under_faults(benchmark, record, rate):
    config = _config(_graph.n + _graph.m)
    baseline = maximal_independent_set(_graph, config=config)

    def run():
        return maximal_independent_set(
            _graph, runtime=ChaosRuntime(config, plan=_plan(rate))
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(result.in_mis, baseline.in_mis)
    _record_sweep("mis", rate, result.report, baseline.report,
                  record, benchmark)


@pytest.mark.chaos
@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_emit_sweep_json(benchmark):
    """Runs last: dump the whole sweep as JSON (stdout and optional file)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_sweep) == 3 * len(RATES)
    # Overhead must be monotone-ish: the highest fault rate costs more
    # recovery reads than the zero rate for every algorithm.
    for algorithm in ("connectivity", "list_ranking", "mis"):
        rows = [e for e in _sweep if e["algorithm"] == algorithm]
        by_rate = {e["fault_rate"]: e for e in rows}
        assert by_rate[0.0]["recovery_reads"] == 0
        assert by_rate[RATES[-1]]["recovery_reads"] > 0
    payload = json.dumps({"experiment": "R1-resilience-sweep",
                          "replication": REPLICATION,
                          "rows": _sweep}, indent=2)
    print("\n" + payload)
    out_path = os.environ.get("RESILIENCE_JSON")
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(payload + "\n")
