"""Ablation experiments for the design knobs DESIGN.md calls out.

* ε-sweep: the paper's rounds are O(1/ε) (2-Cycle) and O(log log n + 1/ε)
  (connectivity) — smaller ε trades per-machine space for extra rounds;
* budget-growth exponent: Algorithm 7/9 grow d → d^1.4; ablate the
  exponent to show slower growth costs extra phases while the output is
  unchanged;
* leader-sampling constant: fewer leaders contract faster per phase but
  risk stalls; the default must sit on the stable side.
"""

import numpy as np
import pytest

from repro.core import AMPCConfig
from repro.algorithms.connectivity import connectivity
from repro.algorithms.two_cycle import two_cycle
from repro.graph import generators, validation

EPSILONS = [0.3, 0.5, 0.7]


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_epsilon_tradeoff_two_cycle(benchmark, record, epsilon):
    g, truth = generators.two_cycle_instance(8192, True, rng=3)
    result = benchmark.pedantic(
        lambda: two_cycle(g, epsilon=epsilon, seed=1), rounds=1, iterations=1
    )
    assert result.is_two_cycles == truth
    record(
        "ablation: epsilon sweep (2-cycle, n=8192)",
        ["epsilon", "space S", "shrink rounds", "total rounds",
         "max reads/machine"],
        [epsilon, result.config.space, result.shrink_rounds,
         result.report.n_rounds, result.report.max_machine_reads],
        rounds=result.report.n_rounds,
    )


def test_epsilon_monotonicity(benchmark):
    """Smaller ε (less space per machine) must not *reduce* rounds."""
    g, _ = generators.two_cycle_instance(8192, True, rng=3)
    rounds = {
        eps: two_cycle(g, epsilon=eps, seed=1).shrink_rounds
        for eps in EPSILONS
    }
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rounds[0.3] >= rounds[0.7], rounds


@pytest.mark.parametrize("exponent", [1.1, 1.4, 2.0])
def test_budget_growth_exponent(benchmark, record, exponent):
    """Ablate d -> d^exponent in the connectivity budget schedule by
    replaying the schedule arithmetic: phases needed until the budget
    reaches the cap, plus the contraction phases after."""
    import math

    n = 32768
    config = AMPCConfig.for_input(4 * n, seed=1)
    d = max(2.0, math.sqrt(config.total_space / n), math.log2(n))
    d_cap = max(n ** (config.epsilon / 3.0),
                math.sqrt(config.read_budget / 4.0), d)
    growth_phases = 0
    while d < d_cap and growth_phases < 64:
        d = min(d**exponent, d_cap)
        growth_phases += 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(
        "ablation: budget growth exponent (schedule, n=32768)",
        ["exponent", "phases to reach cap", "cap"],
        [exponent, growth_phases, f"{d_cap:.0f}"],
        growth_phases=growth_phases,
    )
    if exponent >= 1.4:
        assert growth_phases <= 4


@pytest.mark.parametrize("leader_c", [1.0, 2.0, 4.0])
def test_leader_constant(benchmark, record, leader_c):
    """The Θ(log n / d) constant: contraction stays correct across it;
    larger c = more leaders = slower contraction (more phases)."""
    import repro.primitives.sampling as sampling

    g = generators.erdos_renyi_gnm(4096, 12288, rng=4)
    original = sampling.leader_probability

    def patched(n, d, c=leader_c):
        return original(n, d, c)

    sampling.leader_probability = patched
    try:
        import repro.algorithms.connectivity as conn_mod

        conn_mod.leader_probability = patched
        result = benchmark.pedantic(
            lambda: connectivity(g, seed=1), rounds=1, iterations=1
        )
    finally:
        sampling.leader_probability = original
        import repro.algorithms.connectivity as conn_mod

        conn_mod.leader_probability = original
    assert validation.same_partition(
        result.labels, validation.components_reference(g)
    )
    record(
        "ablation: leader-sampling constant (connectivity, n=4096)",
        ["c", "phases", "rounds"],
        [leader_c, result.phases, result.report.n_rounds],
        phases=result.phases,
    )
