"""Experiment T6 — list ranking: AMPC O(1/ε) vs MPC Θ(log n) (§8.1).

Theorem 6's round bound against Wyllie's pointer jumping; both must
produce identical ranks.
"""

import numpy as np
import pytest

from repro.algorithms.list_ranking import list_ranking, sequential_list_ranks
from repro.baselines.pointer_doubling import mpc_list_ranking
from repro.graph import generators

NS = [512, 2048, 8192, 32768]

_ampc_rounds: dict[int, int] = {}
_mpc_rounds: dict[int, int] = {}


@pytest.mark.parametrize("n", NS)
def test_ampc_list_ranking(benchmark, record, n):
    succ = generators.linked_list(n, rng=n)
    result = benchmark.pedantic(
        lambda: list_ranking(succ, seed=1), rounds=1, iterations=1
    )
    assert np.array_equal(result.ranks, sequential_list_ranks(succ))
    _ampc_rounds[n] = result.report.n_rounds
    record(
        "T6: list ranking (AMPC)",
        ["n", "shrink rounds", "total rounds", "communication"],
        [n, result.shrink_rounds, result.report.n_rounds,
         result.report.total_communication],
        rounds=result.report.n_rounds,
    )


@pytest.mark.parametrize("n", NS)
def test_mpc_list_ranking(benchmark, record, n):
    succ = generators.linked_list(n, rng=n)
    result = benchmark.pedantic(
        lambda: mpc_list_ranking(succ, seed=1), rounds=1, iterations=1
    )
    assert np.array_equal(result.ranks, sequential_list_ranks(succ))
    _mpc_rounds[n] = result.report.n_rounds
    record(
        "T6: list ranking (MPC Wyllie)",
        ["n", "doublings", "rounds"],
        [n, result.iterations, result.report.n_rounds],
        rounds=result.report.n_rounds,
    )


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape(benchmark):
    from conftest import record_row

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in NS:
        record_row(
            "T6: list ranking (comparison)",
            ["n", "AMPC rounds", "MPC rounds", "MPC/AMPC"],
            [n, _ampc_rounds[n], _mpc_rounds[n],
             f"{_mpc_rounds[n] / _ampc_rounds[n]:.2f}"],
        )
    assert _ampc_rounds[NS[-1]] - _ampc_rounds[NS[0]] <= 3
    assert _mpc_rounds[NS[-1]] - _mpc_rounds[NS[0]] >= 10
    assert _ampc_rounds[8192] < _mpc_rounds[8192]
