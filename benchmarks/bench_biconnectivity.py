"""Experiment F1-row3 — 2-edge connectivity: AMPC O(log log n) (paper §9).

Reproduces the Figure 1 row "2-edge connectivity: O(log log_{m/n} n)":
the full BC-labeling pipeline (spanning forest → rooting → Low/High →
critical edges → connectivity) at growing n, with planted-bridge
workloads so correctness is asserted against the known ground truth.
"""

import numpy as np
import pytest

from repro.algorithms.biconnectivity import bc_labeling
from repro.baselines import seq
from repro.graph import generators

SIZES = [(8, 16), (16, 32), (32, 64)]  # (clusters, cluster_size)

_rounds: dict[int, int] = {}


@pytest.mark.parametrize("clusters,cluster_size", SIZES)
def test_bc_labeling_pipeline(benchmark, record, clusters, cluster_size):
    g, planted = generators.bridged_clusters(
        clusters, cluster_size, 3, rng=clusters
    )
    result = benchmark.pedantic(
        lambda: bc_labeling(g, seed=1), rounds=1, iterations=1
    )
    planted_set = {(min(u, v), max(u, v)) for u, v in planted.tolist()}
    assert {tuple(e) for e in result.bridges.tolist()} == planted_set
    n = g.n
    _rounds[n] = result.report.n_rounds
    record(
        "F1-row3: 2-edge connectivity (AMPC)",
        ["n", "m", "bridges", "articulation", "2ecc", "rounds"],
        [n, g.m, result.bridges.shape[0],
         result.articulation_points.size,
         int(np.unique(result.two_edge_labels).size),
         result.report.n_rounds],
        rounds=result.report.n_rounds,
    )


def test_er_workload_matches_sequential(benchmark, record):
    g = generators.erdos_renyi_gnm(2000, 2600, rng=5)
    result = benchmark.pedantic(
        lambda: bc_labeling(g, seed=1), rounds=1, iterations=1
    )
    ref_bridges, ref_artic = seq.bridges_and_articulation(g)
    assert np.array_equal(result.bridges, ref_bridges)
    assert np.array_equal(result.articulation_points, ref_artic)
    record(
        "F1-row3: 2-edge connectivity (ER workload)",
        ["n", "m", "bridges", "articulation", "rounds"],
        [g.n, g.m, result.bridges.shape[0],
         result.articulation_points.size, result.report.n_rounds],
        rounds=result.report.n_rounds,
    )


def test_shape_near_flat(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rounds = [_rounds[k] for k in sorted(_rounds)]
    # Pipeline rounds grow (at most) with log log n: over a 16x size
    # range that is within a few rounds.
    assert max(rounds) - min(rounds) <= 12, rounds
