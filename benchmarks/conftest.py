"""Shared infrastructure for the Figure 1 reproduction benchmarks.

Each bench file covers one experiment id from DESIGN.md §4. Benchmarks
run the solver once (`benchmark.pedantic`, the solvers are deterministic
in their seed), attach the model costs (rounds, communication, budgets)
to ``benchmark.extra_info``, and append a row to a per-experiment table
that is printed at the end of the session — the same rows/series the
paper's Figure 1 reports.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

_TABLES: dict[str, list[list]] = defaultdict(list)
_HEADERS: dict[str, list[str]] = {}


def record_row(experiment: str, headers: list[str], row: list) -> None:
    """Append one measured row to an experiment's output table."""
    _HEADERS[experiment] = headers
    _TABLES[experiment].append(row)


def attach(benchmark, **info) -> None:
    """Attach model costs to the benchmark's extra_info."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def record(benchmark):
    """Convenience fixture combining attach() and record_row()."""

    def _record(experiment: str, headers: list[str], row: list, **info):
        attach(benchmark, **info)
        record_row(experiment, headers, row)

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _TABLES:
        return
    from repro.analysis import render_table

    print("\n")
    print("=" * 78)
    print("Figure/Lemma reproduction tables (see DESIGN.md §4, EXPERIMENTS.md)")
    print("=" * 78)
    for experiment in sorted(_TABLES):
        print(f"\n--- {experiment} ---")
        print(render_table(_HEADERS[experiment], _TABLES[experiment]))
    print()
