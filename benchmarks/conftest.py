"""Shared infrastructure for the Figure 1 reproduction benchmarks.

Each bench file covers one experiment id from DESIGN.md §4. Benchmarks
run the solver once (`benchmark.pedantic`, the solvers are deterministic
in their seed), attach the model costs (rounds, communication, budgets)
to ``benchmark.extra_info``, and append a row to a per-experiment table
that is printed at the end of the session — the same rows/series the
paper's Figure 1 reports.
"""

from __future__ import annotations

import os
from collections import defaultdict

import pytest

_TABLES: dict[str, list[list]] = defaultdict(list)
_HEADERS: dict[str, list[str]] = {}


def quick_mode() -> bool:
    """The one fast-mode switch for everything benchmark-shaped.

    ``REPRO_BENCH_QUICK=1`` (set by ``repro bench --quick`` and ``repro
    perf regen --quick``) means: smallest parametrizations here, quick
    sizes in the regeneration ``main()``s of bench modules that have
    one, and tiny cell sizes in the ``repro.perf`` suite collector —
    one switch, honored uniformly.
    """
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def pytest_collection_modifyitems(config, items):
    """Quick mode (see :func:`quick_mode`): keep only the first
    parametrization of every benchmark function.

    Bench modules list their sweeps in ascending size, so the first
    collected item is the smallest instance — the quick sweep still
    executes every bench module end to end (and fails on exceptions)
    but finishes in seconds instead of minutes.
    """
    if not quick_mode():
        return
    seen: set[tuple[str, str]] = set()
    keep, drop = [], []
    for item in items:
        # Shape/aggregate tests assert over the *full* sweep's results
        # (e.g. rounds at every n) — meaningless on one tiny instance.
        if item.get_closest_marker("aggregate") is not None:
            drop.append(item)
            continue
        key = (item.module.__name__,
               getattr(item, "originalname", None) or item.name)
        if key in seen:
            drop.append(item)
        else:
            seen.add(key)
            keep.append(item)
    items[:] = keep
    if drop:
        config.hook.pytest_deselected(items=drop)


def record_row(experiment: str, headers: list[str], row: list) -> None:
    """Append one measured row to an experiment's output table."""
    _HEADERS[experiment] = headers
    _TABLES[experiment].append(row)


def attach(benchmark, **info) -> None:
    """Attach model costs to the benchmark's extra_info."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def record(benchmark):
    """Convenience fixture combining attach() and record_row()."""

    def _record(experiment: str, headers: list[str], row: list, **info):
        attach(benchmark, **info)
        record_row(experiment, headers, row)

    return _record


def pytest_sessionfinish(session, exitstatus):
    if not _TABLES:
        return
    from repro.analysis import render_table

    print("\n")
    print("=" * 78)
    print("Figure/Lemma reproduction tables (see DESIGN.md §4, EXPERIMENTS.md)")
    print("=" * 78)
    for experiment in sorted(_TABLES):
        print(f"\n--- {experiment} ---")
        print(render_table(_HEADERS[experiment], _TABLES[experiment]))
    print()
