"""Experiment P5.1 — LFMIS query complexity (paper §5, Proposition 5.1).

Yoshida et al.: E_π[Σ_v q_π(v)] ≤ m + n for the untruncated query
process. Measure the truncated implementation's total recursive calls
over random seeds; the ratio calls/(m+n) must stay below a small
constant and not grow with n.
"""

import numpy as np
import pytest

from repro.algorithms.mis import maximal_independent_set
from repro.graph import generators

CASES = [(1024, 3), (4096, 3), (1024, 8)]  # (n, average degree)


@pytest.mark.parametrize("n,avg_deg", CASES)
def test_query_complexity_ratio(benchmark, record, n, avg_deg):
    g = generators.erdos_renyi_gnm(n, avg_deg * n // 2, rng=n + avg_deg)

    def run():
        calls = []
        for seed in range(3):
            res = maximal_independent_set(g, seed=seed)
            calls.append(res.total_query_calls)
        return calls

    calls = benchmark.pedantic(run, rounds=1, iterations=1)
    mean_calls = float(np.mean(calls))
    ratio = mean_calls / (g.m + g.n)
    record(
        "P5.1: LFMIS query complexity",
        ["n", "avg deg", "mean calls", "m+n", "calls/(m+n)"],
        [n, avg_deg, int(mean_calls), g.m + g.n, f"{ratio:.2f}"],
        ratio=ratio,
    )
    # The proposition bounds the expectation by 1x for the pure process;
    # truncation re-queries across iterations, so allow a small factor.
    assert ratio < 3.0, ratio


def test_ratio_flat_in_n(benchmark, record):
    """The calls/(m+n) ratio must not grow with n."""
    ratios = []
    for n in (512, 2048, 8192):
        g = generators.erdos_renyi_gnm(n, 2 * n, rng=n)
        res = maximal_independent_set(g, seed=1)
        ratios.append(res.total_query_calls / (g.m + g.n))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(
        "P5.1: ratio vs n",
        ["n sweep", "ratios"],
        ["512/2048/8192", " -> ".join(f"{r:.2f}" for r in ratios)],
        ratios=ratios,
    )
    assert ratios[-1] < ratios[0] * 2 + 0.5
