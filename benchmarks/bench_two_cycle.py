"""Experiment F1-row5 — 2-Cycle: AMPC O(1) vs MPC O(log n) (paper §4).

Reproduces the Figure 1 row "2-Cycle: O(1) | O(log n)": the AMPC round
count must stay flat across a 256x range of n while the pointer-doubling
MPC baseline grows by ~2 rounds per doubling.
"""

import pytest

from repro.algorithms.two_cycle import two_cycle
from repro.baselines.pointer_doubling import mpc_two_cycle
from repro.graph import generators

NS = [256, 1024, 4096, 16384, 65536]
HEADERS = ["n", "AMPC rounds", "AMPC shrink", "MPC rounds", "MPC/AMPC"]

_ampc_rounds: dict[int, int] = {}
_mpc_rounds: dict[int, int] = {}


@pytest.mark.parametrize("n", NS)
def test_ampc_two_cycle(benchmark, record, n):
    g, truth = generators.two_cycle_instance(n, n % 3 == 0, rng=n)
    result = benchmark.pedantic(
        lambda: two_cycle(g, seed=1), rounds=1, iterations=1
    )
    assert result.is_two_cycles == truth
    _ampc_rounds[n] = result.report.n_rounds
    record(
        "F1-row5: 2-Cycle (AMPC side)",
        ["n", "rounds", "shrink rounds", "communication", "maxR/budget"],
        [n, result.report.n_rounds, result.shrink_rounds,
         result.report.total_communication,
         f"{result.report.max_machine_reads}/{result.config.read_budget}"],
        rounds=result.report.n_rounds,
        communication=result.report.total_communication,
    )


@pytest.mark.parametrize("n", NS)
def test_mpc_two_cycle(benchmark, record, n):
    g, truth = generators.two_cycle_instance(n, n % 3 == 0, rng=n)
    result = benchmark.pedantic(
        lambda: mpc_two_cycle(g, seed=1), rounds=1, iterations=1
    )
    assert result.is_two_cycles == truth
    _mpc_rounds[n] = result.report.n_rounds
    record(
        "F1-row5: 2-Cycle (MPC side)",
        ["n", "rounds", "doublings"],
        [n, result.report.n_rounds, result.iterations],
        rounds=result.report.n_rounds,
    )


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape_flat_vs_log(benchmark):
    """The paper's headline: the 2-Cycle conjecture fails in AMPC."""
    from conftest import record_row

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(NS) <= set(_ampc_rounds) and set(NS) <= set(_mpc_rounds)
    for n in NS:
        ratio = _mpc_rounds[n] / _ampc_rounds[n]
        record_row(
            "F1-row5: 2-Cycle (comparison)", HEADERS,
            [n, _ampc_rounds[n], "-", _mpc_rounds[n], f"{ratio:.2f}"],
        )
    ampc_growth = _ampc_rounds[NS[-1]] - _ampc_rounds[NS[0]]
    mpc_growth = _mpc_rounds[NS[-1]] - _mpc_rounds[NS[0]]
    assert ampc_growth <= 3, f"AMPC should be flat, grew {ampc_growth}"
    assert mpc_growth >= 2 * 6, f"MPC should add ~2/doubling, grew {mpc_growth}"
    # Crossover: AMPC strictly wins by n = 4096 at the latest.
    assert _ampc_rounds[4096] < _mpc_rounds[4096]
