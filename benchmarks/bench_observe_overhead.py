"""Observability overhead bench: the <5% armed / ~0% disabled guard.

Measures what the :mod:`repro.observe` layer costs on the reference
connectivity workload, on both execution paths:

* **disabled** — no observers installed. Every hook site is a single
  ``is None`` / gate-flag predicate, so this must sit in the noise
  floor (the bench times a second unobserved run against the first).
* **armed** — the default ``TracingSession`` (``detail="machine"``
  tracer + metrics). Budget: under ``ARMED_BUDGET_PCT`` (5%). Armed
  consumers only receive round- and machine-level events; the per-op
  hot paths stay unwired (see ``repro.core.hooks.ObserverFan``), which
  is what keeps this bound achievable in pure Python.

Timing is best-of-N **process CPU time** with candidates interleaved
round-robin (:mod:`repro.observe.overhead`); shared CI hosts still show
occasional double-digit outliers on sub-second runs, so the regression
gate in ``repro verify --smoke`` compares against the checked-in
``benchmarks/BENCH_observe.json`` with a full budget width of slack and
retries before failing.

Regenerate the baseline with:

    PYTHONPATH=src python benchmarks/bench_observe_overhead.py
"""

import json
import sys

try:
    import pytest
except ImportError:  # pragma: no cover - direct `python bench_...py` run
    pytest = None

from repro.observe.overhead import (
    ARMED_BUDGET_PCT,
    overhead_trial,
    run_overhead_suite,
)

if pytest is not None:

    @pytest.mark.parametrize("vectorized", [False, True],
                             ids=["scalar", "batched"])
    def test_armed_session_cost(benchmark, vectorized):
        """End-to-end traced connectivity run (tracer + metrics armed)."""
        import repro
        from repro.graph import generators
        from repro.observe import TracingSession

        graph = generators.erdos_renyi_gnm(1500, 3000, 0)

        def run():
            with TracingSession(detail="machine"):
                return repro.connectivity(graph, seed=0,
                                          vectorized=vectorized)

        benchmark.pedantic(run, rounds=3, iterations=1)
        benchmark.extra_info["n"] = 1500

    @pytest.mark.parametrize("vectorized", [False, True],
                             ids=["scalar", "batched"])
    def test_overhead_within_budget(vectorized):
        """The budget itself, as a (retry-tolerant) assertion."""
        for _ in range(3):
            trial = overhead_trial(n=1500, repeats=3,
                                   vectorized=vectorized)
            assert trial["ledger_identical"]
            if trial["armed_overhead_pct"] <= ARMED_BUDGET_PCT:
                return
        raise AssertionError(
            f"armed overhead {trial['armed_overhead_pct']:.1f}% exceeded "
            f"{ARMED_BUDGET_PCT}% in 3/3 attempts"
        )


def _is_clean(payload: dict) -> bool:
    """Reject suite runs with obvious measurement-noise outliers.

    Identical unobserved runs occasionally measure >5% apart on shared
    hosts; a baseline recorded from such a sweep would skew the smoke
    gate (its threshold is baseline + slack), so regeneration retries
    until the disabled delta sits in the noise floor and the armed
    delta is physically plausible (tracing cannot speed a run up).
    """
    return all(
        abs(t["disabled_overhead_pct"]) <= 3.5
        and -4.0 <= t["armed_overhead_pct"] <= ARMED_BUDGET_PCT
        for t in payload["trials"]
    )


def main(argv: list[str]) -> int:
    import os

    out = argv[1] if len(argv) > 1 else "benchmarks/BENCH_observe.json"
    # REPRO_BENCH_QUICK (the uniform fast-mode switch; set by `repro
    # perf regen --quick`): tiny workload, one attempt, no noise
    # rejection — smoke-tests the regeneration pipeline, not a baseline
    # worth checking in.
    quick = bool(os.environ.get("REPRO_BENCH_QUICK"))
    n, repeats, attempts = (600, 2, 1) if quick else (3000, 5, 5)
    for attempt in range(attempts):
        payload = run_overhead_suite(n=n, repeats=repeats)
        if quick or _is_clean(payload):
            break
        print(f"attempt {attempt}: noisy sweep, retrying "
              f"(disabled/armed: "
              + ", ".join(f"{t['disabled_overhead_pct']:+.1f}%/"
                          f"{t['armed_overhead_pct']:+.1f}%"
                          for t in payload["trials"]) + ")")
    payload["trials"] = [
        {k: (round(v, 6) if isinstance(v, float) else v)
         for k, v in trial.items()}
        for trial in payload["trials"]
    ]
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for trial in payload["trials"]:
        path = "batched" if trial["vectorized"] else "scalar "
        print(f"{path} base {trial['base_s']:.4f}s  "
              f"disabled {trial['disabled_overhead_pct']:+.2f}%  "
              f"armed {trial['armed_overhead_pct']:+.2f}%  "
              f"({trial['events']} events, "
              f"ledger identical: {trial['ledger_identical']})")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
