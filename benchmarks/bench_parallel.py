"""Experiment P1 — multi-core process backend scaling curves.

Measures end-to-end wall time of list ranking / connectivity / MIS on
the serial path and on the process backend at 1/2/4/8 workers, and
checks that every parallel run stays bit-identical to serial (results
and per-round ledgers — the backend's contract, not a benchmark
nicety).

Two faces:

* pytest (collected by ``repro bench --quick`` / ``pytest benchmarks``):
  small instances, parity asserted, one table row per configuration.
* ``python benchmarks/bench_parallel.py --out benchmarks/BENCH_parallel.json``
  regenerates the checked-in scaling curves at full size. The JSON
  records the methodology (host cores, repeats, median) alongside every
  sample: scaling numbers are only meaningful relative to the recorded
  ``host_cores`` — on a single-core host the process backend cannot
  beat serial and the curves document its overhead instead.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import time

import numpy as np
import pytest

import repro
from repro.graph import generators
from repro.parallel import use_backend
from repro.verify.runner import _summary_without_walltime

WORKER_COUNTS = [1, 2, 4, 8]

# Full-size instances for the checked-in JSON. list_ranking carries the
# acceptance-criterion cell (n=1e6, vectorized); connectivity and MIS
# run at the largest sizes that keep the whole sweep under ~20 minutes
# on a 1-core CI host (the sizes are recorded per series in the JSON).
FULL_SIZES = {
    "list_ranking": 1_000_000,
    "connectivity": 50_000,
    "mis": 100_000,
}
QUICK_SIZES = {"list_ranking": 2_000, "connectivity": 1_500, "mis": 1_500}


def _make_workload(algo: str, n: int):
    if algo == "list_ranking":
        return generators.linked_list(n, rng=0)
    if algo == "connectivity":
        return generators.erdos_renyi_gnm(n, 2 * n, rng=0)
    if algo == "mis":
        return generators.erdos_renyi_gnm(n, 2 * n, rng=0)
    raise ValueError(algo)


def _run(algo: str, workload):
    if algo == "list_ranking":
        return repro.list_ranking(workload, seed=1, vectorized=True)
    if algo == "connectivity":
        return repro.connectivity(workload, seed=1, vectorized=True)
    if algo == "mis":
        return repro.maximal_independent_set(workload, seed=1)
    raise ValueError(algo)


def _answer(algo: str, result) -> np.ndarray:
    return {
        "list_ranking": lambda r: r.ranks,
        "connectivity": lambda r: r.labels,
        "mis": lambda r: r.in_mis,
    }[algo](result)


# -- pytest face -----------------------------------------------------------


@pytest.mark.parallel
@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("algo", ["list_ranking", "connectivity", "mis"])
def test_parallel_scaling_cell(benchmark, record, algo, workers):
    n = QUICK_SIZES[algo]
    workload = _make_workload(algo, n)
    serial = _run(algo, workload)

    def parallel_run():
        with use_backend("process", workers):
            return _run(algo, workload)

    result = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert np.array_equal(_answer(algo, serial), _answer(algo, result))
    assert (_summary_without_walltime(serial.report)
            == _summary_without_walltime(result.report))
    record(
        "P1: process backend (parity at bench sizes)",
        ["algorithm", "n", "workers", "rounds", "bit-identical"],
        [algo, n, workers, result.report.n_rounds, "yes"],
        rounds=result.report.n_rounds,
        workers=workers,
    )


# -- JSON generation -------------------------------------------------------


def _timed(fn, repeats: int) -> tuple[float, list[float], object]:
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples), samples, result


# Parent-side phase breakdown measured at commit 08a377c, immediately
# before the bulk journal replay landed (same workload as
# replay_merge_section's profile: connectivity n=2000 m=8000, process
# backend, 2 workers, 1-core host). Kept as the before-side of the
# replay-merge comparison; the after-side is re-measured on regen.
PRE_BULK_REPLAY_PHASES = {
    "total_s": 2.376,
    "phases": {"other": 0.9183, "hash-partition": 0.6535,
               "dds-serve": 0.625, "algorithm": 0.0752, "graph": 0.0533,
               "parallel-merge": 0.0418, "runtime": 0.0072,
               "primitives": 0.0015, "machine-exec": 0.0005},
}


def replay_merge_section(quick: bool, repeats: int) -> dict:
    """Measure the parent-side journal-replay merge constant.

    Two views: a microbench applying one machine's journaled scalar
    writes through the pre-PR per-op ``write()`` loop vs the bulk
    ``_apply_journal_writes`` path (layout/placement parity asserted
    before timing), and an ``observe.profiler`` phase breakdown of a
    process-backend connectivity run to set the merge against the whole
    parent-side picture.
    """
    from repro.core.dds import DistributedDataStore
    from repro.observe.profiler import RunProfiler

    n_ops = 5_000 if quick else 50_000
    entries = [(("lbl", i % (n_ops // 2)), (i, float(i)))
               for i in range(n_ops)]

    def fresh():
        return DistributedDataStore(0, n_servers=64, seed=7,
                                    track_contention=True)

    def per_op():
        store = fresh()
        t0 = time.perf_counter()
        for key, value in entries:
            store.write(key, value)
        return time.perf_counter() - t0, store

    def bulk():
        store = fresh()
        t0 = time.perf_counter()
        store._apply_journal_writes(entries)
        return time.perf_counter() - t0, store

    _, a = per_op()
    _, b = bulk()
    assert a.n_writes == b.n_writes
    assert list(a.items()) == list(b.items())
    assert np.array_equal(a.server_item_loads, b.server_item_loads)

    per_op_s = statistics.median(per_op()[0] for _ in range(repeats))
    bulk_s = statistics.median(bulk()[0] for _ in range(repeats))

    n = 400 if quick else 2_000
    g = generators.erdos_renyi_gnm(n, 4 * n, rng=7)
    with use_backend("process", 2):
        repro.connectivity(g, seed=1)  # pool + import warmup
        with RunProfiler() as prof:
            repro.connectivity(g, seed=1)
    breakdown = prof.breakdown()

    return {
        "microbench": {
            "description": "apply one machine's journaled scalar writes "
                           "to the next-round store: pre-PR per-op "
                           "write() loop vs bulk _apply_journal_writes",
            "n_ops": n_ops,
            "per_op_s": round(per_op_s, 4),
            "bulk_s": round(bulk_s, 4),
            "speedup": round(per_op_s / bulk_s, 2),
        },
        "phase_breakdown": {
            "workload": f"connectivity n={n} m={4 * n}, "
                        "process backend, 2 workers, parent-side cProfile",
            "total_s": round(breakdown.total_s, 4),
            "phases": {k: round(v, 4)
                       for k, v in breakdown.phases.items()},
        },
        "pre_pr_phase_breakdown": PRE_BULK_REPLAY_PHASES,
    }


def sweep(sizes: dict[str, int], repeats: int, quick: bool = False) -> dict:
    host_cores = os.cpu_count() or 1
    series = []
    for algo, n in sizes.items():
        workload = _make_workload(algo, n)
        base_median, base_samples, base_result = _timed(
            lambda: _run(algo, workload), repeats
        )
        base_answer = _answer(algo, base_result)
        base_ledger = _summary_without_walltime(base_result.report)
        entry = {
            "algorithm": algo,
            "n": n,
            "path": "vectorized" if algo != "mis" else "scalar",
            "serial": {"median_s": round(base_median, 4),
                       "samples_s": [round(s, 4) for s in base_samples]},
            "workers": [],
        }
        for workers in WORKER_COUNTS:
            def parallel_run():
                with use_backend("process", workers):
                    return _run(algo, workload)

            median, samples, result = _timed(parallel_run, repeats)
            identical = bool(
                np.array_equal(base_answer, _answer(algo, result))
                and base_ledger
                == _summary_without_walltime(result.report)
            )
            entry["workers"].append({
                "workers": workers,
                "median_s": round(median, 4),
                "samples_s": [round(s, 4) for s in samples],
                "speedup_vs_serial": round(base_median / median, 3),
                "bit_identical_to_serial": identical,
            })
            print(f"  {algo} n={n} workers={workers}: "
                  f"{median:.2f}s ({base_median / median:.2f}x serial, "
                  f"identical={identical})", flush=True)
        series.append(entry)
    return {
        "experiment": "P1: process-backend scaling "
                      "(1/2/4/8 workers x list_ranking/connectivity/MIS)",
        "methodology": {
            "host_cores": host_cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "repeats": repeats,
            "statistic": "median of wall-clock end-to-end seconds",
            "note": (
                "Speedups are relative to the serial backend on the same "
                "host and are bounded above by host_cores: with "
                "host_cores=1 the process backend cannot exceed 1.0x "
                "end-to-end and these curves measure its sharding + "
                "journal-replay overhead instead. The >=2.5x list_ranking "
                "target at n=1e6 with 4 workers requires a host with >=4 "
                "physical cores; regenerate this file there with "
                "`python benchmarks/bench_parallel.py --out "
                "benchmarks/BENCH_parallel.json`."
            ),
        },
        "series": series,
        "replay_merge": replay_merge_section(quick, repeats),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="benchmarks/BENCH_parallel.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true",
                        help="tiny instances (smoke-test the sweep itself; "
                             "REPRO_BENCH_QUICK=1 implies this)")
    args = parser.parse_args()
    quick = args.quick or bool(os.environ.get("REPRO_BENCH_QUICK"))
    sizes = QUICK_SIZES if quick else FULL_SIZES
    payload = sweep(sizes, args.repeats, quick=quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
