"""Experiment L4.1 — per-round shrink factor of Algorithm 1 (paper §4).

Lemma 4.1: with sampling probability n^{-ε/2}, a cycle of length
k = Ω(n^ε) shrinks by a factor ≥ n^{ε/2} per round w.h.p. Measure the
realized factor per round against the predicted n^{ε/2}.
"""

import numpy as np
import pytest

from repro.core import AMPCConfig, AMPCRuntime
from repro.algorithms.shrink import shrink
from repro.graph import generators
from repro.graph.io import orient_cycles

NS = [4096, 16384, 65536]


@pytest.mark.parametrize("n", NS)
def test_shrink_factor_per_round(benchmark, record, n):
    g = generators.cycle(n)
    succ, _ = orient_cycles(g)
    config = AMPCConfig.for_input(n, seed=1)

    def run():
        rt = AMPCRuntime(config)
        return shrink(succ, rt, delta=config.epsilon,
                      target_size=int(2 * n**config.epsilon)), rt

    (outcome, rt) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Reconstruct the per-round alive counts from the absorption history.
    alive = n
    predicted = n ** (config.epsilon / 2.0)
    factors = []
    for level in outcome.history:
        nxt = alive - level.absorbed.size
        factors.append(alive / max(nxt, 1))
        alive = nxt
    record(
        "L4.1: shrink factor per round",
        ["n", "predicted n^(eps/2)", "measured factors", "rounds"],
        [n, f"{predicted:.1f}",
         " -> ".join(f"{f:.1f}" for f in factors), outcome.n_rounds],
        predicted=predicted,
        measured=factors,
    )
    # Each early round must achieve at least ~half the predicted factor
    # (Chernoff slack); later rounds run out of cycle to shrink.
    assert factors[0] > predicted / 2, (factors, predicted)
    assert outcome.n_rounds <= 6
