"""Experiments L8.2/L8.3 — cycle-connectivity walk costs (paper §8).

Lemma 8.2: a vertex's walk to the first higher-priority vertex costs
O(log k) expected reads on a k-cycle. Lemma 8.3: the cycle's total walk
cost is O(k log k) w.h.p. (the randomized-quicksort analogy). Measured
directly from the final-walk round of Algorithm 10 with shrink disabled
(target size = n keeps every vertex a survivor).
"""

import math

import numpy as np
import pytest

from repro.core import AMPCConfig, AMPCRuntime
from repro.algorithms.forest import cycle_connectivity_pointers
from repro.graph import generators
from repro.graph.io import orient_cycles

KS = [256, 1024, 4096]


@pytest.mark.parametrize("k", KS)
def test_walk_cost_k_log_k(benchmark, record, k):
    g = generators.cycle(k)
    succ, _ = orient_cycles(g)
    config = AMPCConfig.for_input(k, seed=1)

    def run():
        rt = AMPCRuntime(config)
        # target_size >= n disables shrink: the walk round sees the whole
        # cycle, which is exactly the Lemma 8.2/8.3 setting.
        labels, _ = cycle_connectivity_pointers(succ, runtime=rt)
        walk = next(r for r in rt.report.rounds if "walk" in r.tag)
        return labels, walk

    labels, walk = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.unique(labels).size == 1

    # The walk ran on the shrunken cycle of length k'; recover k' from the
    # walk round's active machines' work items. Simpler: run once more
    # without shrink for the pure lemma measurement.
    rt = AMPCRuntime(config)
    from repro.algorithms.shrink import shrink

    # Pure walk on the full cycle:
    rng = config.rng(salt=0xCC)
    rank = rng.permutation(k).astype(np.int64)

    def setup():
        for v in range(k):
            yield ("succ", v), int(succ[v])
            yield ("rank", v), int(rank[v])

    def walk_fn(ctx, v):
        my = ctx.read(("rank", v))
        cur = ctx.read(("succ", v))
        while cur != v and ctx.read(("rank", cur)) > my:
            cur = ctx.read(("succ", cur))
        return cur

    result = rt.round(list(range(k)), walk_fn, setup=setup(), tag="purewalk")
    reads = result.stats.total_reads
    per_vertex = reads / k
    bound = math.log(k)
    record(
        "L8.2/8.3: cycle walk costs",
        ["k", "total reads", "reads/k", "ln k", "k ln k", "reads/(k ln k)"],
        [k, reads, f"{per_vertex:.2f}", f"{bound:.2f}",
         int(k * bound), f"{reads / (k * bound):.2f}"],
        per_vertex=per_vertex,
    )
    # Expected per-vertex cost ~ 2*H_k - 2 reads (2 reads per hop);
    # assert the O(log k) shape with a generous constant.
    assert per_vertex < 6 * bound
    # And superlinearity is mild: total cost well below k^1.5.
    assert reads < k**1.5
