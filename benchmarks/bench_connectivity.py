"""Experiment F1-row1 — Connectivity: AMPC O(log log n) vs MPC (paper §6).

Reproduces the Figure 1 row "Connectivity: O(log log_{m/n} n) |
O(log D · log log_{m/n} n)". Three series:

* AMPC phases/rounds over growing n — near-flat (log log n is 3..4 for
  every simulatable n);
* the Θ(log n) min-id hooking MPC baseline — grows ~1 round/doubling;
* the Θ(D) label-propagation baseline over growing diameter at fixed n —
  the diameter dependence the AMPC algorithm removes (this is where the
  AMPC advantage is largest in absolute terms at simulated scale).
"""

import pytest

from repro.algorithms.connectivity import connectivity
from repro.baselines.label_propagation import (
    hooking_connectivity,
    label_propagation,
)
from repro.graph import generators, validation

NS = [512, 2048, 8192, 32768]
DIAMETERS = [32, 128, 512]

_ampc_rounds: dict[int, int] = {}
_ampc_cycle_rounds: dict[int, int] = {}
_hook_rounds: dict[int, int] = {}


def workload(n):
    return generators.erdos_renyi_gnm(n, 3 * n, rng=n)


@pytest.mark.parametrize("n", NS)
def test_ampc_connectivity(benchmark, record, n):
    g = workload(n)
    result = benchmark.pedantic(
        lambda: connectivity(g, seed=1), rounds=1, iterations=1
    )
    assert validation.same_partition(
        result.labels, validation.components_reference(g)
    )
    _ampc_rounds[n] = result.report.n_rounds
    record(
        "F1-row1: connectivity (AMPC side)",
        ["n", "m", "phases", "rounds", "budget trajectory"],
        [n, g.m, result.phases, result.report.n_rounds,
         " -> ".join(f"{b:.0f}" for b in result.budgets)],
        rounds=result.report.n_rounds,
        phases=result.phases,
    )


@pytest.mark.parametrize("n", NS)
def test_mpc_hooking(benchmark, record, n):
    # Bounded-degree workload: dense random graphs contract in O(1)
    # hooking iterations (every vertex sees a tiny min-id nearby), so the
    # Θ(log n) cost of MPC hooking+jumping shows on structure — cycles
    # here; the AMPC series on the same workload is recorded alongside.
    g = generators.cycle(n)
    ampc = connectivity(g, seed=1)
    _ampc_cycle_rounds[n] = ampc.report.n_rounds
    result = benchmark.pedantic(
        lambda: hooking_connectivity(g, seed=1), rounds=1, iterations=1
    )
    _hook_rounds[n] = result.report.n_rounds
    record(
        "F1-row1: connectivity (MPC hooking, cycle workload)",
        ["n", "iterations", "MPC rounds", "AMPC rounds (same workload)"],
        [n, result.iterations, result.report.n_rounds,
         ampc.report.n_rounds],
        rounds=result.report.n_rounds,
    )


@pytest.mark.parametrize("n", [512, 2048, 8192])
def test_andoni_mpc_comparison(benchmark, record, n):
    """Like-for-like: the same algorithm without adaptivity — Andoni et
    al.'s MPC graph exponentiation (Figure 1's actual comparator).
    Identical phase structure; each phase pays Θ(log D') squaring
    rounds where AMPC pays one adaptive BFS round."""
    from repro.baselines.andoni_mpc import andoni_mpc_connectivity

    g = workload(n)
    ampc = connectivity(g, seed=1)
    result = benchmark.pedantic(
        lambda: andoni_mpc_connectivity(g, seed=1), rounds=1, iterations=1
    )
    assert validation.same_partition(
        result.labels, validation.components_reference(g)
    )
    record(
        "F1-row1: connectivity (Andoni MPC vs AMPC, like-for-like)",
        ["n", "phases (both)", "MPC squarings/phase", "MPC rounds",
         "AMPC rounds"],
        [n, f"{result.phases}/{ampc.phases}",
         " ".join(str(s) for s in result.squarings_per_phase),
         result.report.n_rounds, ampc.report.n_rounds],
        mpc_rounds=result.report.n_rounds,
        ampc_rounds=ampc.report.n_rounds,
    )
    assert result.report.n_rounds > ampc.report.n_rounds


@pytest.mark.parametrize("diameter", DIAMETERS)
def test_diameter_dependence(benchmark, record, diameter):
    """Fixed total size, growing diameter: AMPC flat, label-prop Θ(D)."""
    g = generators.components_with_diameter(
        max(2, 2048 // (diameter + 1)), diameter, 1, rng=diameter
    )
    ampc = connectivity(g, seed=1)
    result = benchmark.pedantic(
        lambda: label_propagation(g, seed=1), rounds=1, iterations=1
    )
    record(
        "F1-row1: connectivity vs diameter",
        ["diameter", "n", "AMPC rounds", "label-prop rounds (Θ(D))"],
        [diameter, g.n, ampc.report.n_rounds, result.report.n_rounds],
        diameter=diameter,
        ampc_rounds=ampc.report.n_rounds,
        mpc_rounds=result.report.n_rounds,
    )
    assert result.report.n_rounds >= diameter // 2
    assert ampc.report.n_rounds <= 40


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape_loglog_vs_log(benchmark):
    from conftest import record_row

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in NS:
        record_row(
            "F1-row1: connectivity (comparison, cycle workload)",
            ["n", "AMPC rounds", "MPC hooking rounds"],
            [n, _ampc_cycle_rounds[n], _hook_rounds[n]],
        )
    ampc_growth = _ampc_cycle_rounds[NS[-1]] - _ampc_cycle_rounds[NS[0]]
    hook_growth = _hook_rounds[NS[-1]] - _hook_rounds[NS[0]]
    # AMPC near-flat over 64x n; hooking adds ~1 round per doubling.
    assert ampc_growth <= 6, f"AMPC grew {ampc_growth}"
    assert hook_growth >= 3, f"hooking grew only {hook_growth}"
    # The ER series stays near-flat too.
    er_growth = _ampc_rounds[NS[-1]] - _ampc_rounds[NS[0]]
    assert er_growth <= 4, f"AMPC (ER) grew {er_growth}"
