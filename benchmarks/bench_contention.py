"""Experiment L2.1 — DDS contention (paper §2.1, Lemma 2.1).

Two reproductions of the lemma's claim that every DDS server answers
O(S) queries w.h.p.:

* the abstract weighted balls-in-bins experiment at the lemma's
  parameters (max ball weight P, total weight T, P = O(S^{1-Ω(1)})),
  showing the max/mean load ratio concentrating toward 1 as S grows;
* the measured per-server read loads from real algorithm runs.
"""

import numpy as np
import pytest

from repro.analysis.contention import balls_in_bins_trial, contention_profile
from repro.graph import generators

REGIMES = [  # (T, P): S = T / P with P = O(S^{1 - eps})
    (1 << 14, 16),
    (1 << 17, 32),
    (1 << 20, 64),
]


@pytest.mark.parametrize("total,bins", REGIMES)
def test_balls_in_bins_max_load(benchmark, record, total, bins):
    def run():
        ratios = [
            balls_in_bins_trial(total, bins, rng=trial).ratio
            for trial in range(5)
        ]
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(ratios)
    record(
        "L2.1: balls in bins (abstract)",
        ["T", "P", "S=T/P", "worst max/mean over 5 trials"],
        [total, bins, total // bins, f"{worst:.3f}"],
        worst_ratio=worst,
    )
    assert worst < 1.6  # O(S) with a small hidden constant


def test_ratio_concentrates_with_s(benchmark, record):
    small = np.mean([balls_in_bins_trial(1 << 12, 64, rng=t).ratio
                     for t in range(5)])
    large = np.mean([balls_in_bins_trial(1 << 20, 64, rng=t).ratio
                     for t in range(5)])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record(
        "L2.1: concentration",
        ["S small (64)", "ratio", "S large (16384)", "ratio "],
        ["2^6", f"{small:.3f}", "2^14", f"{large:.3f}"],
    )
    assert large < small


def test_measured_contention_from_real_runs(benchmark, record):
    """Per-server loads measured during actual AMPC algorithm traffic."""
    from repro.algorithms.two_cycle import two_cycle
    from repro.algorithms.connectivity import connectivity

    g, _ = generators.two_cycle_instance(8192, True, rng=1)
    res1 = benchmark.pedantic(
        lambda: two_cycle(g, seed=1), rounds=1, iterations=1
    )
    stats1 = contention_profile(res1.report)

    g2 = generators.erdos_renyi_gnm(4096, 12288, rng=2)
    res2 = connectivity(g2, seed=1)
    stats2 = contention_profile(res2.report)

    record(
        "L2.1: measured server loads",
        ["algorithm", "servers", "mean load", "max load", "max/mean"],
        ["2-cycle n=8192", stats1.n_bins, f"{stats1.mean_load:.0f}",
         int(stats1.max_load), f"{stats1.ratio:.2f}"],
    )
    from conftest import record_row

    record_row(
        "L2.1: measured server loads",
        ["algorithm", "servers", "mean load", "max load", "max/mean"],
        ["connectivity n=4096", stats2.n_bins, f"{stats2.mean_load:.0f}",
         int(stats2.max_load), f"{stats2.ratio:.2f}"],
    )
    assert stats1.ratio < 8
    assert stats2.ratio < 8
