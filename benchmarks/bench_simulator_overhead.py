"""Simulator micro-benchmarks: the cost of one simulated operation.

Unlike the experiment benches (single deterministic runs measured by
their *model* costs), these measure real wall-clock of the simulator's
hot paths with repeated timing — the numbers that bound how large an
instance the pure-Python simulator can sweep. Tracked so performance
regressions in the core loop are visible (`--benchmark-compare`).

Every scalar hot path is benchmarked next to its batch-engine
counterpart (``write_array`` / ``read_array`` / ``round_batch`` /
``vectorized=True``), and ``run_sweep`` measures the scalar-vs-batched
pairs directly with ``time.perf_counter`` and emits the checked-in
``benchmarks/BENCH_simulator.json``:

    PYTHONPATH=src python benchmarks/bench_simulator_overhead.py
"""

import json
import os
import sys
import time

import numpy as np

try:
    import pytest
except ImportError:  # pragma: no cover - direct `python bench_...py` run
    pytest = None

from repro.core import AMPCConfig, AMPCRuntime
from repro.core.dds import DistributedDataStore
from repro.core.partition import key_hash, partition_items, server_of_array


def _fresh_scalar_store(n: int = 10_000) -> DistributedDataStore:
    store = DistributedDataStore(0, n_servers=64, seed=1)
    for i in range(n):
        store.write(("k", i), i)
    return store


def _fresh_batch_store(n: int = 10_000) -> DistributedDataStore:
    store = DistributedDataStore(0, n_servers=64, seed=1)
    ids = np.arange(n, dtype=np.int64)
    store.write_array("k", ids, ids)
    return store


if pytest is not None:

    @pytest.fixture
    def sealed_store():
        store = _fresh_scalar_store()
        store.seal()
        return store

    @pytest.fixture
    def sealed_batch_store():
        store = _fresh_batch_store()
        store.seal()
        return store

    def test_dds_read_throughput(benchmark, sealed_store):
        keys = [("k", i) for i in range(10_000)]

        def read_all():
            get = sealed_store.get
            total = 0
            for key in keys:
                total += get(key)
            return total

        benchmark(read_all)
        benchmark.extra_info["ops_per_call"] = len(keys)

    def test_dds_read_array_throughput(benchmark, sealed_batch_store):
        ids = np.arange(10_000, dtype=np.int64)

        def read_all():
            return int(sealed_batch_store.read_array("k", ids).sum())

        benchmark(read_all)
        benchmark.extra_info["ops_per_call"] = int(ids.size)

    def test_dds_write_throughput(benchmark):
        benchmark(_fresh_scalar_store)
        benchmark.extra_info["ops_per_call"] = 10_000

    def test_dds_write_array_throughput(benchmark):
        benchmark(_fresh_batch_store)
        benchmark.extra_info["ops_per_call"] = 10_000

    def test_machine_read_path(benchmark):
        """Full ctx.read path (cache miss) through budget accounting."""
        config = AMPCConfig(space=20_000, n_machines=4, seed=1,
                            budget_multiplier=4.0)
        rt = AMPCRuntime(config)
        pairs = [(("k", i), i) for i in range(10_000)]

        def run_round():
            def worker(ctx, v):
                total = 0
                for i in range(1000):
                    total += ctx.read(("k", (v * 1000 + i) % 10_000))
                return total

            # Fresh setup each call: the data must be in the store this
            # round reads from, independent of earlier benchmark iterations.
            return rt.round(list(range(10)), worker, setup=pairs, tag="bench")

        benchmark(run_round)
        benchmark.extra_info["reads_per_call"] = 10_000

    def test_machine_read_array_path(benchmark):
        """Batch counterpart: ctx.read_array through one budget check."""
        config = AMPCConfig(space=20_000, n_machines=4, seed=1,
                            budget_multiplier=4.0)
        rt = AMPCRuntime(config)
        all_ids = np.arange(10_000, dtype=np.int64)

        def run_round():
            def worker(ctx, block):
                ids = (block[:, None] * 1000 + np.arange(1000)) % 10_000
                total = np.int64(0)
                for row in range(block.size):
                    total += ctx.read_array("k", ids[row]).sum()
                return np.full(block.size, int(total), dtype=np.int64)

            return rt.round_batch(
                np.arange(10, dtype=np.int64), worker,
                setup_arrays=[("k", all_ids, all_ids)], tag="bench",
            )

        benchmark(run_round)
        benchmark.extra_info["reads_per_call"] = 10_000

    def test_key_hash_cost(benchmark):
        keys = [("adj", i, i % 7) for i in range(5_000)]

        def hash_all():
            total = 0
            for key in keys:
                total += key_hash(key, seed=3)
            return total

        benchmark(hash_all)
        benchmark.extra_info["ops_per_call"] = len(keys)

    def test_server_of_array_cost(benchmark):
        us = np.arange(5_000, dtype=np.int64)
        is_ = us % 7

        def hash_all():
            return int(server_of_array(["adj", us, is_], 64, seed=3).sum())

        benchmark(hash_all)
        benchmark.extra_info["ops_per_call"] = int(us.size)

    def test_vectorized_partition_cost(benchmark):
        items = np.arange(1_000_000, dtype=np.int64)
        benchmark(lambda: partition_items(items, 64, seed=5))
        benchmark.extra_info["ops_per_call"] = items.size

    @pytest.mark.parametrize("vectorized", [False, True],
                             ids=["scalar", "batched"])
    def test_shrink_walk_cost(benchmark, vectorized):
        """End-to-end adaptive-walk rounds: the dominant simulator loop."""
        from repro.algorithms.shrink import shrink
        from repro.graph import generators
        from repro.graph.io import orient_cycles

        g = generators.cycle(8192)
        succ, _ = orient_cycles(g)
        config = AMPCConfig.for_input(8192, seed=1)

        def run():
            rt = AMPCRuntime(config)
            return shrink(succ, rt, delta=0.5, target_size=200,
                          vectorized=vectorized)

        benchmark.pedantic(run, rounds=3, iterations=1)
        benchmark.extra_info["elements"] = 8192


# ---------------------------------------------------------------------------
# the scalar-vs-batched sweep behind benchmarks/BENCH_simulator.json
# ---------------------------------------------------------------------------


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(
    *, dds_ops: int = 10_000, list_n: int = 100_000, mis_n: int = 100_000,
    msf_n: int = 100_000, repeats: int = 3
) -> dict:
    """Time each scalar hot path against its batched counterpart.

    Returns the JSON-serializable payload written to
    ``benchmarks/BENCH_simulator.json``; every pair also cross-checks
    that the two paths produce identical values before timing, so the
    reported speedups never compare diverging computations.
    """
    from repro.algorithms.list_ranking import list_ranking
    from repro.algorithms.mis import maximal_independent_set
    from repro.algorithms.msf import minimum_spanning_forest
    from repro.graph.generators import (
        erdos_renyi_gnm,
        linked_list,
        with_random_weights,
    )

    def _round_ledger(report):
        return [(s.tag, s.total_reads, s.total_writes)
                for s in report.rounds]

    results: dict[str, dict] = {}

    # -- DDS write path ----------------------------------------------------
    scalar_s = _best_of(lambda: _fresh_scalar_store(dds_ops), repeats)
    batched_s = _best_of(lambda: _fresh_batch_store(dds_ops), repeats)
    results["dds_write"] = {
        "ops": dds_ops,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }

    # -- DDS read path -----------------------------------------------------
    store_a = _fresh_scalar_store(dds_ops)
    store_a.seal()
    store_b = _fresh_batch_store(dds_ops)
    store_b.seal()
    keys = [("k", i) for i in range(dds_ops)]
    ids = np.arange(dds_ops, dtype=np.int64)
    scalar_total = sum(store_a.get(k) for k in keys)
    batched_total = int(store_b.read_array("k", ids).sum())
    assert scalar_total == batched_total, "scalar/batched reads diverge"
    scalar_s = _best_of(lambda: sum(store_a.get(k) for k in keys), repeats)
    batched_s = _best_of(lambda: store_b.read_array("k", ids).sum(), repeats)
    results["dds_read"] = {
        "ops": dds_ops,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }

    # -- end-to-end list ranking ------------------------------------------
    succ = linked_list(list_n, 1)
    ref = list_ranking(succ, seed=0)
    vec = list_ranking(succ, seed=0, vectorized=True)
    assert np.array_equal(ref.ranks, vec.ranks), "ranks diverge"
    assert _round_ledger(ref.report) == _round_ledger(vec.report), \
        "cost ledgers diverge"
    scalar_s = _best_of(lambda: list_ranking(succ, seed=0), 1)
    batched_s = _best_of(
        lambda: list_ranking(succ, seed=0, vectorized=True), 1
    )
    results["list_ranking"] = {
        "n": list_n,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }

    # -- end-to-end MIS ----------------------------------------------------
    g = erdos_renyi_gnm(mis_n, 2 * mis_n, rng=1)
    ref = maximal_independent_set(g, seed=0)
    vec = maximal_independent_set(g, seed=0, vectorized=True)
    assert np.array_equal(ref.in_mis, vec.in_mis), "MIS sets diverge"
    assert _round_ledger(ref.report) == _round_ledger(vec.report), \
        "MIS cost ledgers diverge"
    scalar_s = _best_of(lambda: maximal_independent_set(g, seed=0), 1)
    batched_s = _best_of(
        lambda: maximal_independent_set(g, seed=0, vectorized=True), 1
    )
    results["mis"] = {
        "n": mis_n,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }

    # -- end-to-end MSF ----------------------------------------------------
    wg = with_random_weights(erdos_renyi_gnm(msf_n, 2 * msf_n, rng=2), 3)
    ref = minimum_spanning_forest(wg, seed=0)
    vec = minimum_spanning_forest(wg, seed=0, vectorized=True)
    assert np.array_equal(ref.edge_ids, vec.edge_ids), "forests diverge"
    assert _round_ledger(ref.report) == _round_ledger(vec.report), \
        "MSF cost ledgers diverge"
    scalar_s = _best_of(lambda: minimum_spanning_forest(wg, seed=0), 1)
    batched_s = _best_of(
        lambda: minimum_spanning_forest(wg, seed=0, vectorized=True), 1
    )
    results["msf"] = {
        "n": msf_n,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }

    return {
        "benchmark": "bench_simulator_overhead.run_sweep",
        "settings": {"dds_ops": dds_ops, "list_n": list_n,
                     "mis_n": mis_n, "msf_n": msf_n,
                     "repeats": repeats},
        "results": {
            name: {k: (round(v, 6) if isinstance(v, float) else v)
                   for k, v in entry.items()}
            for name, entry in results.items()
        },
    }


def main(argv: list[str]) -> int:
    out = argv[1] if len(argv) > 1 else "benchmarks/BENCH_simulator.json"
    if os.environ.get("REPRO_BENCH_QUICK"):
        # `repro perf regen --quick` pipeline smoke test: tiny sizes so
        # the run finishes in seconds (output goes to .perf/regen/).
        payload = run_sweep(dds_ops=2_000, list_n=3_000, mis_n=1_500,
                            msf_n=1_000, repeats=1)
    else:
        payload = run_sweep()
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    for name, entry in payload["results"].items():
        print(f"{name:14s} scalar {entry['scalar_s']:.4f}s  "
              f"batched {entry['batched_s']:.4f}s  "
              f"{entry['speedup']:.1f}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
