"""Simulator micro-benchmarks: the cost of one simulated operation.

Unlike the experiment benches (single deterministic runs measured by
their *model* costs), these measure real wall-clock of the simulator's
hot paths with repeated timing — the numbers that bound how large an
instance the pure-Python simulator can sweep. Tracked so performance
regressions in the core loop are visible (`--benchmark-compare`).
"""

import numpy as np
import pytest

from repro.core import AMPCConfig, AMPCRuntime
from repro.core.dds import DistributedDataStore
from repro.core.partition import key_hash, partition_items


@pytest.fixture
def sealed_store():
    store = DistributedDataStore(0, n_servers=64, seed=1)
    for i in range(10_000):
        store.write(("k", i), i)
    store.seal()
    return store


def test_dds_read_throughput(benchmark, sealed_store):
    keys = [("k", i) for i in range(10_000)]

    def read_all():
        get = sealed_store.get
        total = 0
        for key in keys:
            total += get(key)
        return total

    benchmark(read_all)
    benchmark.extra_info["ops_per_call"] = len(keys)


def test_dds_write_throughput(benchmark):
    def write_10k():
        store = DistributedDataStore(0, n_servers=64, seed=1)
        for i in range(10_000):
            store.write(("k", i), i)
        return store

    benchmark(write_10k)
    benchmark.extra_info["ops_per_call"] = 10_000


def test_machine_read_path(benchmark):
    """Full ctx.read path (cache miss) through budget accounting."""
    config = AMPCConfig(space=20_000, n_machines=4, seed=1,
                        budget_multiplier=4.0)
    rt = AMPCRuntime(config)
    pairs = [(("k", i), i) for i in range(10_000)]

    def run_round():
        def worker(ctx, v):
            total = 0
            for i in range(1000):
                total += ctx.read(("k", (v * 1000 + i) % 10_000))
            return total

        # Fresh setup each call: the data must be in the store this
        # round reads from, independent of earlier benchmark iterations.
        return rt.round(list(range(10)), worker, setup=pairs, tag="bench")

    benchmark(run_round)
    benchmark.extra_info["reads_per_call"] = 10_000


def test_key_hash_cost(benchmark):
    keys = [("adj", i, i % 7) for i in range(5_000)]

    def hash_all():
        total = 0
        for key in keys:
            total += key_hash(key, seed=3)
        return total

    benchmark(hash_all)
    benchmark.extra_info["ops_per_call"] = len(keys)


def test_vectorized_partition_cost(benchmark):
    items = np.arange(1_000_000, dtype=np.int64)
    benchmark(lambda: partition_items(items, 64, seed=5))
    benchmark.extra_info["ops_per_call"] = items.size


def test_shrink_walk_cost(benchmark):
    """End-to-end adaptive-walk round: the dominant simulator loop."""
    from repro.algorithms.shrink import shrink
    from repro.graph import generators
    from repro.graph.io import orient_cycles

    g = generators.cycle(8192)
    succ, _ = orient_cycles(g)
    config = AMPCConfig.for_input(8192, seed=1)

    def run():
        rt = AMPCRuntime(config)
        return shrink(succ, rt, delta=0.5, target_size=200)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["elements"] = 8192
