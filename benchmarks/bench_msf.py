"""Experiment F1-row2 — MST/MSF: AMPC O(log log n) vs MPC O(log n) (§7).

Reproduces the Figure 1 row "Minimum spanning tree: O(log log_{m/n} n) |
O(log n)": AMPC phases near-flat over n, Borůvka iterations growing with
log n; both must output the *identical* (unique) MSF.
"""

import numpy as np
import pytest

from repro.algorithms.msf import minimum_spanning_forest, sequential_msf_ids
from repro.baselines.boruvka import boruvka_msf
from repro.graph import generators

NS = [512, 2048, 8192]

_ampc: dict[int, tuple[int, int]] = {}
_boruvka: dict[int, tuple[int, int]] = {}


def workload(n):
    g = generators.erdos_renyi_gnm(n, 3 * n, rng=n)
    return generators.with_random_weights(g, rng=n)


@pytest.mark.parametrize("n", NS)
def test_ampc_msf(benchmark, record, n):
    wg = workload(n)
    result = benchmark.pedantic(
        lambda: minimum_spanning_forest(wg, seed=1), rounds=1, iterations=1
    )
    assert np.array_equal(result.edge_ids, sequential_msf_ids(wg))
    _ampc[n] = (result.phases, result.report.n_rounds)
    record(
        "F1-row2: MSF (AMPC side)",
        ["n", "m", "phases", "rounds", "budget trajectory"],
        [n, wg.m, result.phases, result.report.n_rounds,
         " -> ".join(f"{b:.0f}" for b in result.budgets)],
        rounds=result.report.n_rounds,
        phases=result.phases,
    )


@pytest.mark.parametrize("n", NS)
def test_boruvka_msf(benchmark, record, n):
    wg = workload(n)
    result = benchmark.pedantic(
        lambda: boruvka_msf(wg, seed=1), rounds=1, iterations=1
    )
    assert np.array_equal(result.edge_ids, sequential_msf_ids(wg))
    _boruvka[n] = (result.iterations, result.report.n_rounds)
    record(
        "F1-row2: MSF (MPC Boruvka)",
        ["n", "m", "iterations", "rounds"],
        [n, wg.m, result.iterations, result.report.n_rounds],
        rounds=result.report.n_rounds,
    )


def test_grid_workload_agreement(benchmark, record):
    """Bounded-degree, high-diameter workload (the hard MPC case)."""
    wg = generators.with_random_weights(generators.grid(48, 48), rng=9)
    result = benchmark.pedantic(
        lambda: minimum_spanning_forest(wg, seed=1), rounds=1, iterations=1
    )
    baseline = boruvka_msf(wg, seed=1)
    assert np.array_equal(result.edge_ids, baseline.edge_ids)
    record(
        "F1-row2: MSF grid workload",
        ["workload", "AMPC phases", "AMPC rounds", "Boruvka iters",
         "Boruvka rounds"],
        ["48x48 grid", result.phases, result.report.n_rounds,
         baseline.iterations, baseline.report.n_rounds],
        rounds=result.report.n_rounds,
    )


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape(benchmark):
    from conftest import record_row

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for n in NS:
        record_row(
            "F1-row2: MSF (comparison)",
            ["n", "AMPC phases", "AMPC rounds", "Boruvka iters",
             "Boruvka rounds"],
            [n, _ampc[n][0], _ampc[n][1], _boruvka[n][0], _boruvka[n][1]],
        )
    phases = [_ampc[n][0] for n in NS]
    assert max(phases) - min(phases) <= 1, phases
