"""Extension experiments beyond bench_matching: coloring, affinity
clustering, fault-tolerance overhead, and latency-hiding projections.

These cover the §10 future-work implementations and the §2.1 systems
arguments (fault tolerance, parallel slackness) quantitatively.
"""

import numpy as np
import pytest

from repro.core import (
    AMPCConfig,
    AMPCRuntime,
    FaultInjectingRuntime,
    SlacknessModel,
    estimate_run,
)
from repro.algorithms.affinity import affinity_clustering
from repro.algorithms.coloring import (
    greedy_coloring,
    greedy_edge_coloring,
    sequential_greedy_coloring,
)
from repro.algorithms.shrink import shrink
from repro.graph import generators
from repro.graph.io import orient_cycles

NS = [512, 2048, 8192]

_color_iters: dict[int, int] = {}


@pytest.mark.parametrize("n", NS)
def test_vertex_coloring(benchmark, record, n):
    g = generators.erdos_renyi_gnm(n, 3 * n, rng=n)
    result = benchmark.pedantic(
        lambda: greedy_coloring(g, seed=1), rounds=1, iterations=1
    )
    assert np.array_equal(result.colors,
                          sequential_greedy_coloring(g, result.pi))
    _color_iters[n] = result.iterations
    record(
        "extension: greedy vertex coloring (AMPC)",
        ["n", "m", "colors", "Δ+1", "iterations", "rounds"],
        [n, g.m, result.n_colors, int(g.degrees.max()) + 1,
         result.iterations, result.report.n_rounds],
        rounds=result.report.n_rounds,
    )


def test_edge_coloring(benchmark, record):
    g = generators.erdos_renyi_gnm(1024, 3072, rng=5)
    result = benchmark.pedantic(
        lambda: greedy_edge_coloring(g, seed=1), rounds=1, iterations=1
    )
    record(
        "extension: greedy edge coloring (AMPC)",
        ["n", "m", "colors", "2Δ-1", "iterations", "rounds"],
        [g.n, g.m, result.n_colors, 2 * int(g.degrees.max()) - 1,
         result.iterations, result.report.n_rounds],
        rounds=result.report.n_rounds,
    )
    assert result.n_colors <= 2 * int(g.degrees.max()) - 1


@pytest.mark.parametrize("n", [512, 4096])
def test_affinity_clustering(benchmark, record, n):
    g = generators.erdos_renyi_gnm(n, 4 * n, rng=n)
    wg = generators.with_random_weights(g, rng=n)
    result = benchmark.pedantic(
        lambda: affinity_clustering(wg, seed=1), rounds=1, iterations=1
    )
    cluster_counts = [int(np.unique(lv).size) for lv in result.levels]
    record(
        "extension: affinity clustering (AMPC)",
        ["n", "levels", "cluster trajectory", "rounds"],
        [n, result.n_levels,
         " -> ".join(str(c) for c in cluster_counts),
         result.report.n_rounds],
        rounds=result.report.n_rounds,
    )
    # Each level shrinks clusters at least geometrically.
    for a, b in zip(cluster_counts, cluster_counts[1:]):
        assert b < a


def test_fault_tolerance_overhead(benchmark, record):
    """§2.1 fault tolerance: identical output under 30% crash rate, with
    measured retry overhead."""
    g = generators.cycle(2048)
    succ, _ = orient_cycles(g)
    config = AMPCConfig.for_input(2048, seed=7)

    clean_rt = AMPCRuntime(config)
    clean = shrink(succ, clean_rt, delta=0.5, target_size=100)

    def faulty_run():
        rt = FaultInjectingRuntime(config, crash_probability=0.3)
        out = shrink(succ, rt, delta=0.5, target_size=100)
        return out, rt

    (faulty, faulty_rt) = benchmark.pedantic(faulty_run, rounds=1, iterations=1)
    assert np.array_equal(clean.alive, faulty.alive)
    assert np.array_equal(clean.succ, faulty.succ)
    overhead = faulty_rt.retry_reads / max(clean_rt.report.total_reads, 1)
    record(
        "§2.1: fault tolerance (shrink, n=2048, 30% crash rate)",
        ["crashes injected", "retry reads", "useful reads", "overhead"],
        [faulty_rt.crashes_injected, faulty_rt.retry_reads,
         clean_rt.report.total_reads, f"{overhead:.1%}"],
        crashes=faulty_rt.crashes_injected,
    )


def test_latency_hiding_projection(benchmark, record):
    """§2.1 parallel slackness: projected wall-clock of the 2-Cycle run
    with and without virtual-machine latency hiding."""
    from repro.algorithms.two_cycle import two_cycle

    g, _ = generators.two_cycle_instance(8192, True, rng=9)
    result = benchmark.pedantic(
        lambda: two_cycle(g, seed=1), rounds=1, iterations=1
    )
    rows = []
    for v in (1, 4, 16, 64):
        est = estimate_run(result.report, SlacknessModel(v))
        rows.append((v, est.total_us_with_slack, est.speedup))
    from conftest import record_row

    for v, us, speedup in rows:
        record_row(
            "§2.1: latency hiding (2-cycle n=8192, 2µs RDMA reads)",
            ["virtual machines / physical", "projected critical path (µs)",
             "speedup vs no slackness"],
            [v, f"{us:,.0f}", f"{speedup:.1f}x"],
        )
    assert rows[-1][2] > rows[0][2]
