"""Experiment F1-row6 — Forest connectivity: AMPC O(1) (paper §8).

Reproduces the Figure 1 row "Forest Connectivity: O(1) |
O(log D · log log_{m/n} n)": AMPC rounds flat over a 64x range of forest
sizes, compared against label propagation whose cost follows the tree
depth.
"""

import pytest

from repro.algorithms.forest import forest_connectivity
from repro.baselines.label_propagation import label_propagation
from repro.graph import generators, validation

NS = [512, 2048, 8192, 32768]

_ampc_rounds: dict[int, int] = {}


@pytest.mark.parametrize("n", NS)
def test_ampc_forest_connectivity(benchmark, record, n):
    g = generators.random_forest(n, max(2, n // 512), rng=n)
    result = benchmark.pedantic(
        lambda: forest_connectivity(g, seed=1), rounds=1, iterations=1
    )
    assert validation.same_partition(
        result.labels, validation.components_reference(g)
    )
    _ampc_rounds[n] = result.report.n_rounds
    record(
        "F1-row6: forest connectivity (AMPC)",
        ["n", "trees", "rounds", "communication"],
        [n, result.n_trees, result.report.n_rounds,
         result.report.total_communication],
        rounds=result.report.n_rounds,
    )


def test_deep_forest_vs_label_propagation(benchmark, record):
    """A path-shaped tree (depth = n - 1) is the adversarial case for
    diameter-bound MPC algorithms; AMPC rounds do not notice."""
    g = generators.path(2048)
    ampc = forest_connectivity(g, seed=1)
    result = benchmark.pedantic(
        lambda: label_propagation(g, seed=1), rounds=1, iterations=1
    )
    record(
        "F1-row6: deep tree comparison",
        ["workload", "AMPC rounds", "label-prop rounds"],
        ["path-2048 (depth 2047)", ampc.report.n_rounds,
         result.report.n_rounds],
        ampc_rounds=ampc.report.n_rounds,
        mpc_rounds=result.report.n_rounds,
    )
    assert ampc.report.n_rounds < 40
    assert result.report.n_rounds > 500


@pytest.mark.aggregate  # asserts over the full sweep; skipped by --quick
def test_shape_flat(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rounds = [_ampc_rounds[n] for n in NS]
    assert max(rounds) - min(rounds) <= 4, rounds
