"""Experiment S1 — serving throughput and tail latency (repro.serve).

Drives the standard synthetic traffic patterns (Poisson/uniform,
Poisson/Zipf, bursty/hotspot) at a resident serving engine on each
execution backend and records sustained QPS plus p50/p95/p99 latency —
ROADMAP item 1's serving numbers.

Two faces:

* pytest (collected by ``repro bench --quick`` / ``pytest benchmarks``):
  small instances; every run must answer correctly (spot-checked
  against the sequential LFMIS oracle) and reconcile its per-request
  ledgers against the tick rows and observe counters.
* ``python benchmarks/bench_serve.py --out benchmarks/BENCH_serve.json``
  regenerates the checked-in grid (3 workloads x serial/process). QPS
  and latency are wall-clock and only meaningful relative to the
  recorded host fingerprint; the answers, read counts, and admission
  accounting in the same rows are deterministic in the seeds.
"""

from __future__ import annotations

import argparse
import json
import os

import numpy as np
import pytest

from repro.algorithms.mis import sequential_lfmis
from repro.graph import generators
from repro.perf import host_fingerprint
from repro.serve import (
    STANDARD_WORKLOADS,
    AdmissionControl,
    ServeRequest,
    ServingEngine,
    loadgen_matrix,
    run_loadgen,
    workload_config,
)

FULL = {"n": 2000, "requests": 600}
QUICK = {"n": 150, "requests": 60}

WORKLOADS = sorted(STANDARD_WORKLOADS)
BACKENDS = ["serial", "process"]


# -- pytest face -----------------------------------------------------------


@pytest.mark.serve
@pytest.mark.parametrize("workload", WORKLOADS)
def test_serve_workload_cell(benchmark, record, workload):
    n, requests = QUICK["n"], QUICK["requests"]
    graph = generators.erdos_renyi_gnm(n, 2 * n, rng=0)
    engine = ServingEngine(graph, seed=1)
    cfg = workload_config(workload, n_requests=requests, seed=1)

    result = benchmark.pedantic(lambda: run_loadgen(engine, cfg),
                                rounds=1, iterations=1)
    row = result.summary()
    assert row["completed"] == requests
    assert row["reconciled"], result.reconcile_problems
    in_mis = sequential_lfmis(graph, engine.pi)
    for resp in result.responses:
        if resp.request.kind == "mis_member":
            assert resp.value == bool(in_mis[resp.request.key])
    record(
        "S1: serving QPS + tail latency (quick sizes)",
        ["workload", "n", "requests", "qps", "p50_ms", "p99_ms", "shed"],
        [workload, n, requests, f"{row['qps']:.0f}",
         f"{row['p50_ms']:.3f}", f"{row['p99_ms']:.3f}", row["rejected"]],
        qps=row["qps"],
        p99_ms=row["p99_ms"],
    )


@pytest.mark.serve
def test_serve_backend_parity(benchmark, record):
    """Answers and ledgers must match bit-for-bit across backends."""
    n = QUICK["n"]
    graph = generators.erdos_renyi_gnm(n, 2 * n, rng=0)
    reqs = [ServeRequest("mis_member", v) for v in range(0, n, 3)]

    def run(backend):
        engine = ServingEngine(graph, seed=1, backend=backend, n_workers=2)
        return engine, engine.execute(reqs)

    _, serial = run("serial")
    engine_p, process = benchmark.pedantic(lambda: run("process"),
                                           rounds=1, iterations=1)
    key = lambda rs: [(r.value, r.reads, r.query_calls) for r in rs]
    assert key(serial) == key(process)
    assert engine_p.reconcile() == []
    record(
        "S1: serving backend parity",
        ["requests", "backend", "bit-identical"],
        [len(reqs), "process(2)", "yes"],
    )


# -- JSON generation -------------------------------------------------------


def sweep(sizes: dict, quick: bool) -> dict:
    n, requests = sizes["n"], sizes["requests"]
    graph = generators.erdos_renyi_gnm(n, 2 * n, rng=0)
    payload = loadgen_matrix(
        graph,
        workloads=WORKLOADS,
        backends=BACKENDS,
        n_requests=requests,
        seed=1,
        n_workers=2,
        admission=AdmissionControl(max_queue=256, batch_window=32),
    )
    return {
        "experiment": "S1-serving",
        "quick": quick,
        "host": host_fingerprint(),
        "workload_source": f"er(n={n}, m={2 * n}) seed=1",
        "admission": {"max_queue": 256, "batch_window": 32},
        "rows": payload["rows"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="benchmarks/BENCH_serve.json")
    parser.add_argument("--quick", action="store_true",
                        help="tiny instances (smoke-test the sweep itself; "
                             "REPRO_BENCH_QUICK=1 implies this)")
    args = parser.parse_args()
    quick = args.quick or bool(os.environ.get("REPRO_BENCH_QUICK"))
    payload = sweep(QUICK if quick else FULL, quick)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    ok = all(row["reconciled"] for row in payload["rows"])
    print(f"wrote {args.out} ({len(payload['rows'])} rows, "
          f"reconciled={'yes' if ok else 'NO'})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
